// Indexing loops are the clearer idiom in numeric kernel code.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]

//! Simulated distributed-memory machine: the MPI substrate for the sparse
//! LU reproduction.
//!
//! The paper runs on a Cray XC30 with MPI. This crate replaces that with a
//! *simulated machine* that preserves every quantity the paper's evaluation
//! measures:
//!
//! - **Ranks are tasks** executing the same SPMD closure; point-to-point
//!   messages travel over unbounded channels (eager-mode MPI semantics:
//!   sends never block, receives block until a matching message arrives).
//!   Two interchangeable [`backend`]s drive them: free-running OS threads
//!   (the default) or a cooperative discrete-event scheduler that runs
//!   paper-scale rank counts — `P = 4096` and beyond — in one process.
//!   Simulated results are bitwise identical either way.
//! - **Collectives are built on point-to-point** (binomial-tree broadcast
//!   and reduce, dissemination barrier), so message *counts* and *volumes*
//!   match what a real MPI implementation would transfer.
//! - **Per-rank traffic counters**, keyed by a user-set phase label, give the
//!   exact `W_fact` / `W_red` split of the paper's Fig. 10.
//! - **Per-rank simulated clocks** follow an α-β (latency + inverse
//!   bandwidth) network model plus a flop-rate compute model. A receive
//!   advances the receiver's clock to the message arrival time, so the final
//!   clock of the last rank is the simulated *critical-path* time — the
//!   quantity behind Fig. 9's `T_scu`/`T_comm` split and Fig. 12's FLOP/s.
//!
//! # SPMD discipline
//!
//! Communicator creation ([`Rank::subset`]) is collective and deterministic:
//! all ranks must create communicators in the same order (they derive their
//! context ids from a per-rank counter). This mirrors `MPI_Comm_create`.
//!
//! ```
//! use simgrid::{Machine, Payload, TimeModel};
//!
//! let machine = Machine::new(4, TimeModel::edison_like());
//! let out = machine.run(|rank| {
//!     let world = rank.world();
//!     // ring: everyone sends its id to the right
//!     let right = (rank.id() + 1) % 4;
//!     let left = (rank.id() + 3) % 4;
//!     rank.send(&world, right, 7, Payload::F64s(vec![rank.id() as f64]));
//!     let got = rank.recv(&world, left, 7).into_f64s();
//!     got[0] as usize
//! });
//! assert_eq!(out.results, vec![3, 0, 1, 2]);
//! ```

pub mod backend;
pub mod coll;
pub mod comm;
pub mod faultlab;
pub mod machine;
pub mod payload;
pub mod rank;
pub mod stats;
pub mod tags;
pub mod timemodel;
pub mod topology;
pub mod trace;

pub use backend::{Backend, EventBackend, ExecBackend, Schedule, ThreadedBackend};
pub use comm::Comm;
pub use faultlab::{
    EdgeFilter, FailKind, FailureBoard, FaultAction, FaultPlan, FaultRule, LinkRule,
    MachineFailure, RankFailure, RecvError, RetryPolicy, StallRule,
};
pub use machine::{Machine, RunResult};
pub use payload::{KindMismatch, Payload, PayloadKind};
pub use rank::Rank;
pub use stats::{merged_metrics, PhaseCounter, RankReport, TrafficSummary};
pub use timemodel::TimeModel;
pub use topology::{Grid2d, Grid3d};
pub use trace::{render_gantt, validate_trace};
// Observability substrate: spans, activities, metrics, Chrome export,
// critical-path analysis (see the `obs` crate).
pub use obs;
pub use obs::{
    commvol_json, hostprof_json, memprof_json, ActivityKind, CommClass, CommLedger, CriticalPath,
    GridAxis, HostPhase, HostReport, HostScope, Json, MemClass, MemLedger, MemReport,
    MetricsRegistry, RankObs, SpanCat, SpanId,
};
// `obs::CommReport` (the wire-volume report on `RankReport::commvol`) is
// deliberately not re-exported at the top level: `commcheck::CommReport`
// below already owns that name here. Reach it as `simgrid::obs::CommReport`.
// Communication sanitizer: race/deadlock/leak detection online
// ([`Machine::with_sanitizer`]) and the offline trace linter.
pub use commcheck;
pub use commcheck::{CommReport, Finding};
