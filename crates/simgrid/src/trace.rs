//! Trace rendering and validation over the span/activity store.
//!
//! When tracing is enabled on the machine ([`crate::Machine::with_tracing`]),
//! every rank records hierarchical spans (level → phase → supernode →
//! collective) and machine-level activities — compute, send, receive,
//! blocking wait — in simulated time (see [`obs::span`]). This module turns
//! a finished run into a terminal timeline and checks store invariants.
//! The Chrome/Perfetto exporter lives in [`obs::chrome`]; critical-path
//! attribution in [`obs::critpath`].
//!
//! The Gantt view is the tool used to *see* the paper's effects: the 2D
//! baseline shows long wait stripes on most ranks while the 3D run shows
//! the per-grid parallel phase followed by the short reduction exchanges.

use crate::stats::RankReport;
use obs::ActivityKind;

/// Render a run's traces as a text Gantt chart: one row per rank, `width`
/// characters across the makespan. Glyphs: `#` compute, `>` send, `<`
/// receive, `.` wait, space idle (not yet started / finished early).
/// The footer is a `0 … makespan` axis aligned under the bars plus a
/// legend line.
///
/// Ranks without traces (tracing disabled) render as empty rows.
pub fn render_gantt(reports: &[RankReport], width: usize) -> String {
    let makespan = reports.iter().map(|r| r.clock).fold(0.0f64, f64::max);
    let mut out = String::new();
    if makespan <= 0.0 || width == 0 {
        out.push_str("(no simulated time elapsed)\n");
        return out;
    }
    let dt = makespan / width as f64;
    for (rank, rep) in reports.iter().enumerate() {
        let mut row = vec![' '; width];
        if let Some(trace) = &rep.trace {
            // For each column pick the kind covering the largest share.
            for (c, slot) in row.iter_mut().enumerate() {
                let t0 = c as f64 * dt;
                let t1 = t0 + dt;
                let mut shares = [0.0f64; 4]; // Compute, Send, Recv, Wait
                for a in &trace.activities {
                    if a.end <= t0 || a.start >= t1 {
                        continue;
                    }
                    let overlap = a.end.min(t1) - a.start.max(t0);
                    let idx = match a.kind {
                        ActivityKind::Compute => 0,
                        ActivityKind::Send => 1,
                        ActivityKind::Recv => 2,
                        ActivityKind::Wait => 3,
                    };
                    shares[idx] += overlap;
                }
                // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN share
                // (zero-length clock anomaly under injected stalls) must
                // degrade to an arbitrary pick, not a panic mid-render.
                let (best, share) = shares
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap();
                if *share > 0.0 {
                    *slot = [
                        ActivityKind::Compute,
                        ActivityKind::Send,
                        ActivityKind::Recv,
                        ActivityKind::Wait,
                    ][best]
                        .glyph();
                }
            }
        }
        let comp_pct = if rep.clock > 0.0 {
            100.0 * rep.t_comp / rep.clock
        } else {
            0.0
        };
        out.push_str(&format!(
            "r{rank:<3} |{}| {comp_pct:3.0}% comp\n",
            row.iter().collect::<String>()
        ));
    }
    // Axis aligned with the bar columns: '0' under the first column, the
    // makespan label ending under the last.
    let label = format!("{makespan:.6}s");
    out.push_str(&format!(
        "      0{label:>width$}\n",
        width = width.saturating_sub(1)
    ));
    out.push_str("      (#=compute  >=send  <=recv  .=wait)\n");
    out
}

/// Validate the internal consistency of one rank's trace:
///
/// - activities are chronological, non-overlapping, and sum (by kind) to
///   the report's `t_comp` / `t_comm`;
/// - spans are well-formed: nonnegative length, inside `[0, clock]`,
///   contained in their parent's interval, with consistent depth;
/// - every activity's span reference points at a recorded span whose
///   interval covers the activity.
///
/// Test/diagnostic helper; `Ok` for untraced reports.
pub fn validate_trace(rep: &RankReport) -> Result<(), String> {
    let Some(trace) = &rep.trace else {
        return Ok(());
    };
    let mut cursor = 0.0f64;
    let mut comp = 0.0;
    let mut comm = 0.0;
    for (i, a) in trace.activities.iter().enumerate() {
        if a.start < cursor - 1e-12 {
            return Err(format!("activity {i} overlaps predecessor"));
        }
        if a.end < a.start {
            return Err(format!("activity {i} has negative duration"));
        }
        cursor = a.end;
        match a.kind {
            ActivityKind::Compute => comp += a.duration(),
            _ => comm += a.duration(),
        }
        if let Some(sid) = a.span {
            let Some(s) = trace.spans.get(sid) else {
                return Err(format!("activity {i} references unknown span {sid}"));
            };
            if a.start < s.start - 1e-12 || a.end > s.end + 1e-12 {
                return Err(format!(
                    "activity {i} [{}, {}] outside its span '{}' [{}, {}]",
                    a.start, a.end, s.name, s.start, s.end
                ));
            }
        }
    }
    if (comp - rep.t_comp).abs() > 1e-9 * (1.0 + rep.t_comp) {
        return Err(format!("compute time mismatch: {comp} vs {}", rep.t_comp));
    }
    if (comm - rep.t_comm).abs() > 1e-9 * (1.0 + rep.t_comm) {
        return Err(format!("comm time mismatch: {comm} vs {}", rep.t_comm));
    }
    for (i, s) in trace.spans.iter().enumerate() {
        if s.id != i {
            return Err(format!("span {i} has id {}", s.id));
        }
        if s.end < s.start {
            return Err(format!("span {i} '{}' has negative length", s.name));
        }
        if s.start < -1e-12 || s.end > rep.clock + 1e-12 {
            return Err(format!("span {i} '{}' outside [0, clock]", s.name));
        }
        match s.parent {
            None => {
                if s.depth != 0 {
                    return Err(format!("root span {i} has depth {}", s.depth));
                }
            }
            Some(p) => {
                let Some(parent) = trace.spans.get(p) else {
                    return Err(format!("span {i} has unknown parent {p}"));
                };
                if p >= i {
                    return Err(format!("span {i} parent {p} not created before it"));
                }
                if s.depth != parent.depth + 1 {
                    return Err(format!(
                        "span {i} depth {} but parent depth {}",
                        s.depth, parent.depth
                    ));
                }
                if s.start < parent.start - 1e-12 || s.end > parent.end + 1e-12 {
                    return Err(format!(
                        "span {i} '{}' [{}, {}] escapes parent '{}' [{}, {}]",
                        s.name, s.start, s.end, parent.name, parent.start, parent.end
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::payload::Payload;
    use crate::timemodel::TimeModel;
    use obs::SpanCat;

    #[test]
    fn traces_cover_the_clock_and_render() {
        let model = TimeModel {
            alpha: 1.0,
            beta: 0.1,
            flops_per_sec: 10.0,
        };
        let m = Machine::new(2, model).with_tracing();
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.advance_compute(50);
                rank.send(&world, 1, 0, Payload::F64s(vec![0.0; 10]));
            } else {
                rank.recv(&world, 0, 0);
                rank.advance_compute(20);
            }
        });
        for rep in &out.reports {
            validate_trace(rep).unwrap();
            assert!(rep.trace.as_ref().unwrap().activities.len() >= 2);
        }
        let g = render_gantt(&out.reports, 40);
        assert!(g.contains('#'), "gantt must show compute:\n{g}");
        assert!(g.lines().count() >= 3);
        // Rank 1 waits for rank 0's long compute: a wait stripe must show.
        assert!(g.contains('.'), "gantt must show waiting:\n{g}");
    }

    #[test]
    fn gantt_footer_axis_aligns_with_bars() {
        let m = Machine::new(
            1,
            TimeModel {
                alpha: 0.0,
                beta: 0.0,
                flops_per_sec: 1.0,
            },
        )
        .with_tracing();
        let out = m.run(|rank| rank.advance_compute(5));
        let width = 40;
        let g = render_gantt(&out.reports, width);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "rank row + axis + legend:\n{g}");
        let bar = lines[0];
        let axis = lines[1];
        // '0' sits under the first bar column; the axis line ends exactly
        // under the closing '|'.
        let first_col = bar.find('|').unwrap() + 1;
        assert_eq!(axis.as_bytes()[first_col], b'0', "axis:\n{g}");
        assert_eq!(axis.len(), first_col + width, "axis:\n{g}");
        assert!(axis.trim_end().ends_with("5.000000s"), "axis:\n{g}");
        assert!(lines[2].contains("#=compute"));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let m = Machine::new(1, TimeModel::zero());
        let out = m.run(|_| ());
        assert!(out.reports[0].trace.is_none());
    }

    #[test]
    fn adjacent_compute_activities_merge() {
        let model = TimeModel {
            alpha: 0.0,
            beta: 0.0,
            flops_per_sec: 1.0,
        };
        let m = Machine::new(1, model).with_tracing();
        let out = m.run(|rank| {
            for _ in 0..100 {
                rank.advance_compute(1);
            }
        });
        let trace = out.reports[0].trace.as_ref().unwrap();
        assert_eq!(trace.activities.len(), 1, "contiguous compute must merge");
        assert!((trace.activities[0].duration() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_and_tag_activities() {
        let model = TimeModel {
            alpha: 0.5,
            beta: 0.0,
            flops_per_sec: 1.0,
        };
        let m = Machine::new(2, model).with_tracing();
        let out = m.run(|rank| {
            let world = rank.world();
            rank.with_span(SpanCat::Level, "level0", |rank| {
                rank.set_phase("fact");
                rank.advance_compute(3);
                rank.with_span(SpanCat::Node, "sn0", |rank| {
                    if rank.id() == 0 {
                        rank.send(&world, 1, 1, Payload::F64s(vec![1.0]));
                    } else {
                        rank.recv(&world, 0, 1);
                    }
                });
            });
            rank.set_phase("solve");
            rank.advance_compute(2);
        });
        for rep in &out.reports {
            validate_trace(rep).unwrap();
            let trace = rep.trace.as_ref().unwrap();
            // level0 > fact > sn0, plus the top-level solve phase.
            assert!(trace.max_span_depth() >= 3, "spans: {:?}", trace.spans);
            let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"level0"));
            assert!(names.contains(&"fact"));
            assert!(names.contains(&"sn0"));
            assert!(names.contains(&"solve"));
            // The send/recv activity must resolve to phase "fact".
            let comm = trace
                .activities
                .iter()
                .find(|a| a.msg.is_some())
                .expect("traced p2p activity");
            assert_eq!(trace.phase_of(comm.span), Some("fact"));
            // The trailing compute resolves to "solve".
            let last = trace.activities.last().unwrap();
            assert_eq!(trace.phase_of(last.span), Some("solve"));
        }
    }

    #[test]
    fn gantt_survives_nan_activity_shares() {
        // Regression: the per-column winner used `partial_cmp().unwrap()`,
        // which panics as soon as one share is NaN — e.g. an activity whose
        // endpoints came out NaN under a zero-length clock anomaly. The
        // renderer must degrade gracefully, not take down a chaos run's
        // post-mortem.
        let m = Machine::new(1, TimeModel::zero()).with_tracing();
        let mut out = m.run(|rank| {
            rank.advance_compute(1);
        });
        // Give the run nonzero makespan, then poison one activity.
        out.reports[0].clock = 1.0;
        let trace = out.reports[0].trace.as_mut().unwrap();
        trace.activities.push(obs::Activity {
            kind: ActivityKind::Compute,
            start: f64::NAN,
            end: f64::NAN,
            span: None,
            peer: None,
            words: 0,
            msg: None,
        });
        let g = render_gantt(&out.reports, 20);
        assert!(g.contains("r0"), "gantt must still render:\n{g}");
    }

    #[test]
    fn phase_span_reopens_after_enclosing_exit() {
        // Same phase label across two level spans: each level must get its
        // own phase span (the first is closed when its level closes).
        let m = Machine::new(
            1,
            TimeModel {
                alpha: 0.0,
                beta: 0.0,
                flops_per_sec: 1.0,
            },
        )
        .with_tracing();
        let out = m.run(|rank| {
            for lvl in 0..2 {
                rank.with_span(SpanCat::Level, &format!("level{lvl}"), |rank| {
                    rank.set_phase("fact");
                    rank.advance_compute(1);
                });
            }
        });
        let trace = out.reports[0].trace.as_ref().unwrap();
        let facts: Vec<_> = trace.spans.iter().filter(|s| s.name == "fact").collect();
        assert_eq!(facts.len(), 2, "one fact span per level: {:?}", trace.spans);
        assert!(facts.iter().all(|s| s.depth == 1));
        validate_trace(&out.reports[0]).unwrap();
    }
}
