//! Per-rank event tracing and a text Gantt renderer.
//!
//! When tracing is enabled on the machine ([`crate::Machine::with_tracing`]),
//! every rank records its simulated-time intervals — compute, send, receive,
//! and blocking wait — and the renderer turns a finished run into a terminal
//! timeline. This is the tool used to *see* the paper's effects: the 2D
//! baseline shows long wait stripes on most ranks while the 3D run shows the
//! per-grid parallel phase followed by the short reduction exchanges.

use crate::stats::RankReport;

/// What a rank was doing during one traced interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Local floating-point work.
    Compute,
    /// Transfer charge for an outgoing message.
    Send,
    /// Transfer charge for an incoming message.
    Recv,
    /// Blocked waiting for a message that had not yet arrived.
    Wait,
}

/// One traced interval of simulated time.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub start: f64,
    pub end: f64,
    pub kind: EventKind,
}

impl TraceEvent {
    /// Interval length in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Render a run's traces as a text Gantt chart: one row per rank, `width`
/// characters across the makespan. Glyphs: `#` compute, `>` send, `<`
/// receive, `.` wait, space idle (not yet started / finished early).
///
/// Ranks without traces (tracing disabled) render as empty rows.
pub fn render_gantt(reports: &[RankReport], width: usize) -> String {
    let makespan = reports.iter().map(|r| r.clock).fold(0.0f64, f64::max);
    let mut out = String::new();
    if makespan <= 0.0 || width == 0 {
        out.push_str("(no simulated time elapsed)\n");
        return out;
    }
    let dt = makespan / width as f64;
    for (rank, rep) in reports.iter().enumerate() {
        let mut row = vec![' '; width];
        if let Some(trace) = &rep.trace {
            // For each column pick the kind covering the largest share.
            for (c, slot) in row.iter_mut().enumerate() {
                let t0 = c as f64 * dt;
                let t1 = t0 + dt;
                let mut shares = [0.0f64; 4]; // Compute, Send, Recv, Wait
                for ev in trace {
                    if ev.end <= t0 || ev.start >= t1 {
                        continue;
                    }
                    let overlap = ev.end.min(t1) - ev.start.max(t0);
                    let idx = match ev.kind {
                        EventKind::Compute => 0,
                        EventKind::Send => 1,
                        EventKind::Recv => 2,
                        EventKind::Wait => 3,
                    };
                    shares[idx] += overlap;
                }
                let (best, share) = shares
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap();
                if *share > 0.0 {
                    *slot = ['#', '>', '<', '.'][best];
                }
            }
        }
        let comp_pct = if rep.clock > 0.0 {
            100.0 * rep.t_comp / rep.clock
        } else {
            0.0
        };
        out.push_str(&format!(
            "r{rank:<3} |{}| {comp_pct:3.0}% comp\n",
            row.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "      0 {:>width$.6}s   (#=compute  >=send  <=recv  .=wait)\n",
        makespan,
        width = width.saturating_sub(2)
    ));
    out
}

/// Validate the internal consistency of a trace: events ordered, non-
/// overlapping, and summing (by kind) to the report's `t_comp`/`t_comm`.
/// Test/diagnostic helper.
pub fn validate_trace(rep: &RankReport) -> Result<(), String> {
    let Some(trace) = &rep.trace else {
        return Ok(());
    };
    let mut cursor = 0.0f64;
    let mut comp = 0.0;
    let mut comm = 0.0;
    for (i, ev) in trace.iter().enumerate() {
        if ev.start < cursor - 1e-12 {
            return Err(format!("event {i} overlaps predecessor"));
        }
        if ev.end < ev.start {
            return Err(format!("event {i} has negative duration"));
        }
        cursor = ev.end;
        match ev.kind {
            EventKind::Compute => comp += ev.duration(),
            _ => comm += ev.duration(),
        }
    }
    if (comp - rep.t_comp).abs() > 1e-9 * (1.0 + rep.t_comp) {
        return Err(format!("compute time mismatch: {comp} vs {}", rep.t_comp));
    }
    if (comm - rep.t_comm).abs() > 1e-9 * (1.0 + rep.t_comm) {
        return Err(format!("comm time mismatch: {comm} vs {}", rep.t_comm));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::payload::Payload;
    use crate::timemodel::TimeModel;

    #[test]
    fn traces_cover_the_clock_and_render() {
        let model = TimeModel {
            alpha: 1.0,
            beta: 0.1,
            flops_per_sec: 10.0,
        };
        let m = Machine::new(2, model).with_tracing();
        let out = m.run(|rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.advance_compute(50);
                rank.send(&world, 1, 0, Payload::F64s(vec![0.0; 10]));
            } else {
                rank.recv(&world, 0, 0);
                rank.advance_compute(20);
            }
        });
        for rep in &out.reports {
            validate_trace(rep).unwrap();
            assert!(rep.trace.as_ref().unwrap().len() >= 2);
        }
        let g = render_gantt(&out.reports, 40);
        assert!(g.contains('#'), "gantt must show compute:\n{g}");
        assert!(g.lines().count() >= 3);
        // Rank 1 waits for rank 0's long compute: a wait stripe must show.
        assert!(g.contains('.'), "gantt must show waiting:\n{g}");
    }

    #[test]
    fn tracing_disabled_by_default() {
        let m = Machine::new(1, TimeModel::zero());
        let out = m.run(|_| ());
        assert!(out.reports[0].trace.is_none());
    }

    #[test]
    fn adjacent_compute_events_merge() {
        let model = TimeModel {
            alpha: 0.0,
            beta: 0.0,
            flops_per_sec: 1.0,
        };
        let m = Machine::new(1, model).with_tracing();
        let out = m.run(|rank| {
            for _ in 0..100 {
                rank.advance_compute(1);
            }
        });
        let trace = out.reports[0].trace.as_ref().unwrap();
        assert_eq!(trace.len(), 1, "contiguous compute must merge");
        assert!((trace[0].duration() - 100.0).abs() < 1e-12);
    }
}
