//! Centralized, audited message-tag allocation for the whole workspace.
//!
//! Every tag on the simulated wire comes from one of two disjoint
//! namespaces:
//!
//! - **Point-to-point kinds** — `tag = KIND | payload` with the kind id in
//!   bits 48..62 and a caller payload (supernode / panel / step index)
//!   below bit 48. Declared here as `T_*` constants and listed in
//!   [`REGISTRY`].
//! - **Collective-internal tags** — bit 62 ([`COLL_TAG`]) set, a phase id
//!   in bits 57..=59, a round counter in bits 53..=56, and the caller's
//!   base tag below bit 53 (composed by [`coll_tag`]). Collective *caller
//!   bases* (`CB_*`) live in the same numeric range as p2p kinds but are
//!   physically disjoint because the composed tag always carries bit 62.
//!
//! Earlier revisions (pre-PR 4) derived collective sub-tags arithmetically
//! (`tag + round`, `tag ^ 0x5555`), which aliased sibling collectives with
//! nearby base tags. The bit-field layout makes the sub-namespaces disjoint
//! by construction; [`audit`] re-proves the whole registry's disjointness
//! and is invoked statically by `commplan`'s plan checks, promoting the
//! PR-4 runtime fix to a plan-time guarantee.

/// Bit position of the point-to-point kind field; the payload (supernode
/// index, panel index, refinement step, ...) must stay below this.
pub const KIND_SHIFT: u32 = 48;
/// Mask of the payload bits of a point-to-point tag.
pub const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

// --- Point-to-point kinds (tag = T_* | payload) ----------------------------

/// 2D panel factorization: diagonal block broadcast along the owner row.
pub const T_DIAG_ROW: u64 = 1 << KIND_SHIFT;
/// 2D panel factorization: diagonal block broadcast down the owner column.
pub const T_DIAG_COL: u64 = 2 << KIND_SHIFT;
/// 2D panel factorization: packed L-panel broadcast along each row.
pub const T_LPANEL: u64 = 3 << KIND_SHIFT;
/// 2D panel factorization: packed U-panel broadcast down each column.
pub const T_UPANEL: u64 = 4 << KIND_SHIFT;
/// 2D triangular solve: forward-sweep partial-sum reduction.
pub const T_FWD_RED: u64 = 5 << KIND_SHIFT;
/// 2D triangular solve: forward-sweep solution broadcast.
pub const T_FWD_BC: u64 = 6 << KIND_SHIFT;
/// 2D triangular solve: backward-sweep partial-sum reduction.
pub const T_BWD_RED: u64 = 7 << KIND_SHIFT;
/// 2D triangular solve: backward-sweep solution broadcast.
pub const T_BWD_BC: u64 = 8 << KIND_SHIFT;
/// 3D factorization: z-line ancestor reduction (Algorithm 1's reduce phase).
pub const T_REDUCE: u64 = 9 << KIND_SHIFT;
/// 3D result collection: gather factored panels to grid 0.
pub const T_GATHER: u64 = 10 << KIND_SHIFT;
/// 3D triangular solve: ancestor partial-sum accumulation up the z-line.
pub const T_ACC_RED: u64 = 12 << KIND_SHIFT;
/// 3D triangular solve: solved ancestor segments pushed down the z-line.
pub const T_X_DOWN: u64 = 13 << KIND_SHIFT;
/// 3D symbolic setup: structure reduction up the z-line.
pub const T_SYM_RED: u64 = 14 << KIND_SHIFT;
/// 3D symbolic setup: merged structure gather.
pub const T_SYM_GATHER: u64 = 15 << KIND_SHIFT;
/// 2.5D dense SUMMA: A-panel ring shift.
pub const T_APAN: u64 = 21 << KIND_SHIFT;
/// 2.5D dense SUMMA: B-panel ring shift.
pub const T_BPAN: u64 = 22 << KIND_SHIFT;
/// 2.5D dense SUMMA: initial replication across layers.
pub const T_REPL: u64 = 23 << KIND_SHIFT;
/// 2.5D dense SUMMA: C-contribution reduction across layers.
pub const T_CRED: u64 = 24 << KIND_SHIFT;

// --- Collective caller bases (routed through [`coll_tag`]) ------------------

/// Layer-wide sum of distributed solution pieces (2D solve driver).
pub const CB_LAYER_XSUM: u64 = 9 << KIND_SHIFT;
/// World allreduce assembling the final solution vector (3D solve).
pub const CB_SOLVE_X: u64 = 11 << KIND_SHIFT;
/// Per-step allreduce in iterative refinement (`CB_REFINE | step`).
pub const CB_REFINE: u64 = 12 << KIND_SHIFT;

// --- Collective-internal tag layout ----------------------------------------

/// High-bit namespace for collective-internal tags: separates collective
/// from user point-to-point traffic on the same communicator.
pub const COLL_TAG: u64 = 1 << 62;

/// Phase-id field: bits 57..=59.
pub const PHASE_SHIFT: u32 = 57;
/// Broadcast requested directly via `Rank::bcast`.
pub const PH_BCAST: u64 = 1 << PHASE_SHIFT;
/// Reduce-to-root — both `Rank::reduce_sum` and the reduce half of
/// `Rank::allreduce_sum` (sequentially indistinguishable on a FIFO
/// channel; allreduce's broadcast half is namespaced apart).
pub const PH_REDUCE: u64 = 2 << PHASE_SHIFT;
/// The broadcast half of `Rank::allreduce_sum`.
pub const PH_ALLREDUCE_BCAST: u64 = 3 << PHASE_SHIFT;
/// The reduce half of `Rank::allreduce_max`.
pub const PH_MAX_REDUCE: u64 = 4 << PHASE_SHIFT;
/// The broadcast half of `Rank::allreduce_max`.
pub const PH_MAX_BCAST: u64 = 5 << PHASE_SHIFT;
/// Dissemination-barrier rounds (combined with the round field).
pub const PH_BARRIER: u64 = 6 << PHASE_SHIFT;
/// Linear gather to root.
pub const PH_GATHER: u64 = 7 << PHASE_SHIFT;

/// Per-round counter field for the barrier: bits 53..=56, zero for every
/// other collective. 4 bits bound `ceil(log2 p)` rounds at `p <= 2^16`.
pub const ROUND_SHIFT: u32 = 53;
pub const MAX_ROUNDS: u64 = 16;

/// Compose a collective-internal tag: namespace bit, phase id, caller tag.
/// The caller's base tag must fit below the round field.
pub fn coll_tag(phase: u64, tag: u64) -> u64 {
    assert!(
        tag < 1 << ROUND_SHIFT,
        "collective base tag {tag:#x} overflows into the round/phase namespace"
    );
    COLL_TAG | phase | tag
}

// --- Registry + audit -------------------------------------------------------

/// Which namespace a registered tag base belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagSpace {
    /// `T_*`: physical p2p tag base, payload in the low 48 bits.
    P2p,
    /// `CB_*`: caller base handed to a collective; physical tags carry
    /// [`COLL_TAG`] and a phase id on top.
    CollBase,
}

/// One declared tag base.
#[derive(Clone, Copy, Debug)]
pub struct TagDecl {
    pub name: &'static str,
    pub space: TagSpace,
    pub base: u64,
}

/// Every tag base the workspace is allowed to put on the wire. New
/// subsystems must register here; [`audit`] fails on any overlap.
pub const REGISTRY: &[TagDecl] = &[
    TagDecl {
        name: "T_DIAG_ROW",
        space: TagSpace::P2p,
        base: T_DIAG_ROW,
    },
    TagDecl {
        name: "T_DIAG_COL",
        space: TagSpace::P2p,
        base: T_DIAG_COL,
    },
    TagDecl {
        name: "T_LPANEL",
        space: TagSpace::P2p,
        base: T_LPANEL,
    },
    TagDecl {
        name: "T_UPANEL",
        space: TagSpace::P2p,
        base: T_UPANEL,
    },
    TagDecl {
        name: "T_FWD_RED",
        space: TagSpace::P2p,
        base: T_FWD_RED,
    },
    TagDecl {
        name: "T_FWD_BC",
        space: TagSpace::P2p,
        base: T_FWD_BC,
    },
    TagDecl {
        name: "T_BWD_RED",
        space: TagSpace::P2p,
        base: T_BWD_RED,
    },
    TagDecl {
        name: "T_BWD_BC",
        space: TagSpace::P2p,
        base: T_BWD_BC,
    },
    TagDecl {
        name: "T_REDUCE",
        space: TagSpace::P2p,
        base: T_REDUCE,
    },
    TagDecl {
        name: "T_GATHER",
        space: TagSpace::P2p,
        base: T_GATHER,
    },
    TagDecl {
        name: "T_ACC_RED",
        space: TagSpace::P2p,
        base: T_ACC_RED,
    },
    TagDecl {
        name: "T_X_DOWN",
        space: TagSpace::P2p,
        base: T_X_DOWN,
    },
    TagDecl {
        name: "T_SYM_RED",
        space: TagSpace::P2p,
        base: T_SYM_RED,
    },
    TagDecl {
        name: "T_SYM_GATHER",
        space: TagSpace::P2p,
        base: T_SYM_GATHER,
    },
    TagDecl {
        name: "T_APAN",
        space: TagSpace::P2p,
        base: T_APAN,
    },
    TagDecl {
        name: "T_BPAN",
        space: TagSpace::P2p,
        base: T_BPAN,
    },
    TagDecl {
        name: "T_REPL",
        space: TagSpace::P2p,
        base: T_REPL,
    },
    TagDecl {
        name: "T_CRED",
        space: TagSpace::P2p,
        base: T_CRED,
    },
    TagDecl {
        name: "CB_LAYER_XSUM",
        space: TagSpace::CollBase,
        base: CB_LAYER_XSUM,
    },
    TagDecl {
        name: "CB_SOLVE_X",
        space: TagSpace::CollBase,
        base: CB_SOLVE_X,
    },
    TagDecl {
        name: "CB_REFINE",
        space: TagSpace::CollBase,
        base: CB_REFINE,
    },
];

const PHASES: &[(u64, &str)] = &[
    (PH_BCAST, "bcast"),
    (PH_REDUCE, "reduce"),
    (PH_ALLREDUCE_BCAST, "allreduce-bcast"),
    (PH_MAX_REDUCE, "max-reduce"),
    (PH_MAX_BCAST, "max-bcast"),
    (PH_BARRIER, "barrier"),
    (PH_GATHER, "gather"),
];

/// Statically audit the tag registry: every point-to-point kind is aligned,
/// nonzero, below the collective namespace, and pairwise distinct; every
/// collective caller base is aligned, fits below the round field, and is
/// pairwise distinct among bases; phase ids are pairwise distinct and clear
/// of the round/caller fields. Returns the first violation as an error.
pub fn audit() -> Result<(), String> {
    let p2p: Vec<&TagDecl> = REGISTRY
        .iter()
        .filter(|d| d.space == TagSpace::P2p)
        .collect();
    let cb: Vec<&TagDecl> = REGISTRY
        .iter()
        .filter(|d| d.space == TagSpace::CollBase)
        .collect();
    for d in &p2p {
        if d.base == 0 {
            return Err(format!("{}: zero p2p base", d.name));
        }
        if d.base & PAYLOAD_MASK != 0 {
            return Err(format!("{}: p2p base overlaps the payload field", d.name));
        }
        // The whole payload range [base, base | PAYLOAD_MASK] must stay
        // below COLL_TAG; since the base's low bits are zero (checked
        // above) this reduces to the base comparison.
        if d.base >= COLL_TAG {
            return Err(format!("{}: p2p tags reach the COLL namespace", d.name));
        }
    }
    for (i, a) in p2p.iter().enumerate() {
        for b in &p2p[i + 1..] {
            if a.base == b.base {
                return Err(format!("duplicate p2p kind: {} vs {}", a.name, b.name));
            }
        }
    }
    for d in &cb {
        if d.base & PAYLOAD_MASK != 0 {
            return Err(format!(
                "{}: collective base overlaps the payload field",
                d.name
            ));
        }
        // As above: payload-range containment reduces to the base check.
        if d.base >= 1 << ROUND_SHIFT {
            return Err(format!(
                "{}: collective base overflows into the round field",
                d.name
            ));
        }
    }
    for (i, a) in cb.iter().enumerate() {
        for b in &cb[i + 1..] {
            if a.base == b.base {
                return Err(format!(
                    "duplicate collective base: {} vs {}",
                    a.name, b.name
                ));
            }
        }
    }
    let round_mask = (MAX_ROUNDS - 1) << ROUND_SHIFT;
    for (i, &(pa, na)) in PHASES.iter().enumerate() {
        if pa == 0 || pa & round_mask != 0 || pa & ((1 << ROUND_SHIFT) - 1) != 0 || pa >= COLL_TAG {
            return Err(format!("phase {na}: id {pa:#x} escapes the phase field"));
        }
        for &(pb, nb) in &PHASES[i + 1..] {
            if pa == pb {
                return Err(format!("duplicate phase id: {na} vs {nb}"));
            }
        }
    }
    Ok(())
}

/// Human-readable description of a wire tag for diagnostics: names the
/// declared kind (or collective phase + base) and the payload bits.
pub fn describe(tag: u64) -> String {
    if tag & COLL_TAG != 0 {
        let phase = tag & (0b111 << PHASE_SHIFT);
        let round = (tag >> ROUND_SHIFT) & (MAX_ROUNDS - 1);
        let base = tag & ((1 << ROUND_SHIFT) - 1);
        let pname = PHASES
            .iter()
            .find(|&&(p, _)| p == phase)
            .map_or("?", |&(_, n)| n);
        let bname = REGISTRY
            .iter()
            .find(|d| d.space == TagSpace::CollBase && d.base == base & !PAYLOAD_MASK)
            .map_or("?", |d| d.name);
        format!(
            "coll:{pname} base={bname}|{:#x} round={round}",
            base & PAYLOAD_MASK
        )
    } else {
        let kind = tag & !PAYLOAD_MASK;
        let kname = REGISTRY
            .iter()
            .find(|d| d.space == TagSpace::P2p && d.base == kind)
            .map_or("?", |d| d.name);
        format!("p2p:{kname}|{:#x}", tag & PAYLOAD_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_audit_passes() {
        audit().expect("tag registry must be collision-free");
    }

    #[test]
    fn describe_names_known_tags() {
        assert_eq!(describe(T_REDUCE | 17), "p2p:T_REDUCE|0x11");
        assert!(describe(coll_tag(PH_BCAST, T_LPANEL | 3)).contains("bcast"));
        assert!(describe(coll_tag(PH_REDUCE, CB_SOLVE_X)).contains("CB_SOLVE_X"));
    }
}
