//! The per-rank execution context: point-to-point messaging, clocks,
//! counters, spans, and metrics.

use crate::backend::EventCtl;
use crate::comm::Comm;
use crate::faultlab::{
    FailKind, FailureBoard, FaultDecision, FaultPlan, OrderlyAbort, RankFailure, RecvError,
    RetryPolicy, StallRule,
};
use crate::payload::Payload;
use crate::stats::{PhaseCounter, RankReport};
use crate::tags::COLL_TAG;
use crate::timemodel::TimeModel;
use crate::topology::Grid3d;
use commcheck::{SanState, SendRec, VClock, WaitGraph, WaitInfo};
use crossbeam::channel::{Receiver, Sender};
use obs::{
    ActivityKind, CommClass, CommLedger, GridAxis, HostPhase, HostProf, HostScope, MemClass,
    MemLedger, MetricsRegistry, MsgInfo, Recorder, SpanCat, SpanId,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Granularity at which a blocked receive polls for a published deadlock
/// report (and for the timeout deadline).
const BLOCK_SLICE: Duration = Duration::from_millis(20);

/// A message in flight.
#[derive(Debug)]
pub(crate) struct Msg {
    pub src_world: usize,
    pub ctx: u64,
    pub tag: u64,
    /// Simulated time at which this message is available to the receiver.
    pub arrival: f64,
    /// Machine-unique id linking this message's send and recv trace
    /// activities (high bits: sender world rank; low bits: send sequence).
    pub uid: u64,
    /// Sender's vector clock at the send, piggybacked when the sanitizer is
    /// on. `None` (no allocation, no work) otherwise.
    pub clock: Option<Box<VClock>>,
    /// Link-degradation factor in effect on this edge (1.0 = healthy);
    /// the receiver charges the same degraded transfer cost the sender did.
    pub link: f64,
    /// True for a transport-level duplicate injected under recovery: the
    /// receiver filters it at intake before protocol matching.
    pub injected_dup: bool,
    pub payload: Payload,
}

/// The execution context handed to the SPMD closure for each simulated rank.
///
/// All communication and time accounting flows through methods on this type.
pub struct Rank {
    world_rank: usize,
    world_size: usize,
    senders: Arc<Vec<Sender<Msg>>>,
    inbox: Receiver<Msg>,
    /// Messages received from the channel but not yet matched by a `recv`.
    pending: HashMap<(u64, usize, u64), VecDeque<Msg>>,
    model: TimeModel,
    /// Monotonic counter for deterministic communicator context ids; all
    /// ranks create communicators in the same order (SPMD discipline).
    next_ctx: u64,
    phase: String,
    traffic: HashMap<String, PhaseCounter>,
    clock: f64,
    t_comm: f64,
    t_comp: f64,
    flops: u64,
    peak_mem: u64,
    /// Per-send sequence number feeding message uids.
    msg_seq: u64,
    /// Span/activity recorder, present when the machine traces.
    rec: Option<Recorder>,
    /// The `Phase` span opened by [`Rank::set_phase`], rotated on change.
    phase_span: Option<SpanId>,
    /// Always-on counters/gauges/histograms; merged across ranks after the
    /// run.
    metrics: MetricsRegistry,
    /// Tagged allocation ledger: running balances per memory class, the
    /// high-water mark, and its class+level attribution. Always on; the
    /// per-event timeline is recorded only when tracing.
    ledger: MemLedger,
    /// Wire-volume ledger: algorithmic words sent keyed by
    /// `(phase, class, tree level, grid axis)` plus per-edge totals.
    /// Always on; the per-event timeline is recorded only when tracing.
    comm: CommLedger,
    /// Host-time profiler, present when the machine runs with
    /// [`crate::Machine::with_host_profiling`]. `None` means every
    /// [`Rank::host_scope`] is a no-op guard — zero cost on default runs.
    host: Option<Arc<HostProf>>,
    /// Explicit communication class for subsequent sends
    /// ([`Rank::set_comm_class`]); overrides tag-based classification, so
    /// panel broadcasts keep their class inside collective internals.
    comm_class: Option<CommClass>,
    /// 3D process-grid shape registered by the topology layer
    /// ([`Rank::register_grid`]); classifies each send's edge by grid
    /// axis. Without it every edge classifies as [`GridAxis::Cross`].
    grid: Option<Grid3d>,
    /// Machine-wide wait-for graph; touched only when a receive actually
    /// blocks on the channel, so the fast path costs nothing.
    wait_graph: Arc<WaitGraph>,
    /// Online sanitizer state, present when the machine runs with
    /// [`crate::Machine::with_sanitizer`].
    san: Option<Arc<SanState>>,
    /// This rank's vector clock (happens-before), present iff `san` is.
    vclock: Option<VClock>,
    /// Seeded fault plan, present when the machine runs with
    /// [`crate::Machine::with_fault_plan`]. `None` costs nothing on the
    /// send path.
    faults: Option<Arc<FaultPlan>>,
    /// Ack/retransmit recovery for droppable sends
    /// ([`crate::Machine::with_retry`]); `None` means drops are lost.
    retry: Option<RetryPolicy>,
    /// Simulated-time receive deadline ([`crate::Machine::with_recv_deadline`]):
    /// a receive whose matching message arrives later than this many
    /// simulated seconds after the receiver started waiting fails with
    /// [`RecvError::Deadline`] instead of silently absorbing the stall.
    recv_deadline: Option<f64>,
    /// Wall-clock backstop for a blocked receive (threaded backend):
    /// per-machine config, defaulting from `SALU_RECV_TIMEOUT_SECS` at run
    /// time (see [`crate::Machine::with_recv_timeout`]). Unused under the
    /// event backend, where a blocked receive parks instead of polling.
    recv_timeout: Duration,
    /// Machine-wide failure collection (primary vs cascade attribution).
    board: Arc<FailureBoard>,
    /// This rank's stall windows from the plan, sorted by trigger time.
    my_stalls: Vec<StallRule>,
    /// Index of the next unapplied stall window.
    stall_idx: usize,
    /// Handle onto the cooperative scheduler, present iff the machine runs
    /// under [`crate::EventBackend`]. `None` (the threaded backend) makes
    /// every event-mode hook vanish from the hot paths.
    evt: Option<EventCtl>,
}

/// Fault-layer wiring shared by every rank; built once per run by the
/// machine.
#[derive(Clone)]
pub(crate) struct FaultCtx {
    pub faults: Option<Arc<FaultPlan>>,
    pub retry: Option<RetryPolicy>,
    pub recv_deadline: Option<f64>,
    pub recv_timeout: Duration,
    pub board: Arc<FailureBoard>,
}

impl Rank {
    #[allow(clippy::too_many_arguments)] // crate-internal; called once from Machine::run
    pub(crate) fn new(
        world_rank: usize,
        world_size: usize,
        senders: Arc<Vec<Sender<Msg>>>,
        inbox: Receiver<Msg>,
        model: TimeModel,
        tracing: bool,
        host_profiling: bool,
        wait_graph: Arc<WaitGraph>,
        san: Option<Arc<SanState>>,
        fctx: FaultCtx,
        evt: Option<EventCtl>,
    ) -> Self {
        let my_stalls = fctx
            .faults
            .as_ref()
            .map(|p| p.stalls_for(world_rank))
            .unwrap_or_default();
        Rank {
            world_rank,
            world_size,
            senders,
            inbox,
            pending: HashMap::new(),
            model,
            next_ctx: 1, // 0 is reserved for the world communicator
            phase: "default".to_string(),
            traffic: HashMap::new(),
            clock: 0.0,
            t_comm: 0.0,
            t_comp: 0.0,
            flops: 0,
            peak_mem: 0,
            msg_seq: 0,
            rec: if tracing {
                Some(Recorder::new(world_rank))
            } else {
                None
            },
            phase_span: None,
            metrics: MetricsRegistry::default(),
            ledger: MemLedger::new(tracing),
            comm: CommLedger::new(tracing),
            host: host_profiling.then(|| Arc::new(HostProf::new(tracing))),
            comm_class: None,
            grid: None,
            wait_graph,
            vclock: san.as_ref().map(|_| VClock::new(world_size)),
            san,
            faults: fctx.faults,
            retry: fctx.retry,
            recv_deadline: fctx.recv_deadline,
            recv_timeout: fctx.recv_timeout,
            board: fctx.board,
            my_stalls,
            stall_idx: 0,
            evt,
        }
    }

    /// Record this rank's failure on the machine's board and abort the
    /// rank thread in an orderly way: the machine attributes the run
    /// failure to the first *primary* (non-cascade) entry, so a rank dying
    /// here never masks the original cause. Public so solver layers can
    /// surface structured [`FailKind::Solver`] failures.
    pub fn fail(&self, kind: FailKind) -> ! {
        self.board.record(RankFailure {
            rank: self.world_rank,
            phase: self.phase.clone(),
            kind,
            seq: 0,
        });
        std::panic::panic_any(OrderlyAbort);
    }

    /// Record one machine-level activity interval, if tracing.
    #[inline]
    fn record(
        &mut self,
        kind: ActivityKind,
        start: f64,
        end: f64,
        peer: Option<usize>,
        words: u64,
        msg: Option<MsgInfo>,
    ) {
        if let Some(rec) = &mut self.rec {
            rec.activity(kind, start, end, peer, words, msg);
        }
    }

    /// This rank's world rank.
    #[inline]
    pub fn id(&self) -> usize {
        self.world_rank
    }

    /// Total number of ranks on the machine.
    #[inline]
    pub fn size(&self) -> usize {
        self.world_size
    }

    /// The machine model in effect.
    pub fn model(&self) -> TimeModel {
        self.model
    }

    /// The world communicator containing every rank.
    pub fn world(&self) -> Comm {
        Comm {
            ctx: 0,
            members: Arc::new((0..self.world_size).collect()),
            my_local: self.world_rank,
        }
    }

    /// Create a sub-communicator from an explicit member list (world ranks,
    /// in local-rank order). **Collective**: every rank of the world must
    /// call `subset` in the same order with the same `members` so context
    /// ids line up (MPI_Comm_create semantics). Returns `None` for
    /// non-members, who must still call this method.
    pub fn subset(&mut self, members: &[usize]) -> Option<Comm> {
        let ctx = self.next_ctx;
        self.next_ctx += 1;
        let my_local = members.iter().position(|&w| w == self.world_rank)?;
        Some(Comm {
            ctx,
            members: Arc::new(members.to_vec()),
            my_local,
        })
    }

    /// Set the traffic-accounting phase label. All subsequent sends and
    /// receives are counted under this label until it changes. The LU stack
    /// uses `"fact"` for xy-plane factorization traffic and `"reduce"` for
    /// z-axis ancestor-reduction traffic (paper Fig. 10).
    ///
    /// When tracing, this also rotates a `Phase` span under whatever span
    /// is currently open (e.g. the level span), so phases show up in the
    /// trace hierarchy and critical-path attribution without extra calls.
    pub fn set_phase(&mut self, phase: &str) {
        let changed = self.phase != phase;
        if changed {
            self.phase = phase.to_string();
        }
        let Some(rec) = &mut self.rec else {
            return;
        };
        // Reopen even when the label is unchanged if the previous phase
        // span was closed by an enclosing span's exit (next level loop).
        let stale = self.phase_span.is_none_or(|ps| !rec.is_open(ps));
        if !changed && !stale {
            return;
        }
        let t = self.clock;
        if let Some(ps) = self.phase_span.take() {
            if rec.is_open(ps) {
                rec.exit(ps, t);
            }
        }
        let name = self.phase.clone();
        self.phase_span = Some(rec.enter(SpanCat::Phase, &name, t));
    }

    /// Open a labeled span at the current simulated time. Returns a handle
    /// for [`Rank::span_exit`]; `None` when the machine is not tracing
    /// (pass it to `span_exit` regardless — the pair is a no-op then).
    pub fn span_enter(&mut self, cat: SpanCat, name: &str) -> Option<SpanId> {
        let t = self.clock;
        self.rec.as_mut().map(|rec| rec.enter(cat, name, t))
    }

    /// Close a span opened by [`Rank::span_enter`]. Inner spans still open
    /// are closed with it.
    pub fn span_exit(&mut self, id: Option<SpanId>) {
        let t = self.clock;
        if let (Some(rec), Some(id)) = (self.rec.as_mut(), id) {
            rec.exit(id, t);
        }
    }

    /// Run `f` inside a span: sugar for `span_enter` / `span_exit` that
    /// cannot leak an open span on early return of a value.
    pub fn with_span<T>(&mut self, cat: SpanCat, name: &str, f: impl FnOnce(&mut Rank) -> T) -> T {
        let id = self.span_enter(cat, name);
        let out = f(self);
        self.span_exit(id);
        out
    }

    /// Bump a named metrics counter by `by`.
    pub fn metric_inc(&mut self, name: &str, by: u64) {
        self.metrics.inc(name, by);
    }

    /// Record a histogram sample under `name` (log2 buckets).
    pub fn metric_observe(&mut self, name: &str, v: f64) {
        self.metrics.observe(name, v);
    }

    /// Keep the maximum of `v` under gauge `name`.
    pub fn metric_gauge_max(&mut self, name: &str, v: f64) {
        self.metrics.gauge_max(name, v);
    }

    /// Open a host-time profiling scope for `phase`. Returns a no-op guard
    /// when the machine runs without [`crate::Machine::with_host_profiling`],
    /// so call sites never branch. The guard holds its own profiler handle —
    /// the rank stays mutably usable while the scope is open.
    pub fn host_scope(&self, phase: HostPhase) -> HostScope {
        match &self.host {
            Some(h) => h.scope(phase, None, self.clock),
            None => HostScope::noop(),
        }
    }

    /// Like [`Rank::host_scope`], additionally attributing the scope's
    /// self time to supernode `sn`.
    pub fn host_scope_sn(&self, phase: HostPhase, sn: usize) -> HostScope {
        match &self.host {
            Some(h) => h.scope(phase, Some(sn), self.clock),
            None => HostScope::noop(),
        }
    }

    /// Charge `bytes` of `class` to the memory ledger at the current
    /// simulated time, attributed to the current elimination-tree level.
    pub fn mem_charge(&mut self, class: MemClass, bytes: u64) {
        let t = self.clock;
        self.ledger.charge(class, bytes, t);
    }

    /// Charge against an explicit tree level (e.g. ancestor replicas whose
    /// level is known at store-build time).
    pub fn mem_charge_at(&mut self, class: MemClass, level: u32, bytes: u64) {
        let t = self.clock;
        self.ledger.charge_at(class, level, bytes, t);
    }

    /// Credit (free) `bytes` of `class` at the current level. Panics on
    /// underflow — a credit without a matching charge is a wiring bug.
    pub fn mem_credit(&mut self, class: MemClass, bytes: u64) {
        let t = self.clock;
        self.ledger.credit(class, bytes, t);
    }

    /// Credit against an explicit tree level.
    pub fn mem_credit_at(&mut self, class: MemClass, level: u32, bytes: u64) {
        let t = self.clock;
        self.ledger.credit_at(class, level, bytes, t);
    }

    /// Set the elimination-tree level subsequent ledger charges are
    /// attributed to (the 3D driver calls this once per level; 2D runs
    /// stay at level 0).
    pub fn set_tree_level(&mut self, level: u32) {
        self.ledger.set_level(level);
        self.comm.set_level(level);
    }

    /// Register the 3D process-grid shape so subsequent traffic is
    /// classified by grid axis (x: row, y: column, z: anti-diagonal stack).
    /// Called once by [`crate::build_grid_comms`]; drivers that build their
    /// own communicators can call it directly.
    pub fn register_grid(&mut self, g: Grid3d) {
        self.grid = Some(g);
    }

    /// Set the communication class subsequent sends are charged to in the
    /// wire ledger, or clear it with `None`. An explicit class overrides
    /// tag-based classification (collective-internal vs control), so a
    /// panel broadcast keeps its class while riding a collective.
    pub fn set_comm_class(&mut self, class: Option<CommClass>) {
        self.comm_class = class;
    }

    /// Run `f` with sends classified as `class`, restoring the previous
    /// classification on return.
    pub fn with_comm_class<T>(&mut self, class: CommClass, f: impl FnOnce(&mut Rank) -> T) -> T {
        let prev = self.comm_class;
        self.comm_class = Some(class);
        let out = f(self);
        self.comm_class = prev;
        out
    }

    /// Total algorithmic words this rank has sent so far (wire ledger).
    pub fn comm_sent_words(&self) -> u64 {
        self.comm.sent_words()
    }

    /// Which grid axis the edge from this rank to world rank `peer` runs
    /// along. Exactly one differing coordinate names the axis; anything
    /// else — including no registered grid — is a cross edge.
    fn comm_axis(&self, peer: usize) -> GridAxis {
        let Some(g) = &self.grid else {
            return GridAxis::Cross;
        };
        let (r0, c0, z0) = g.coords_of(self.world_rank);
        let (r1, c1, z1) = g.coords_of(peer);
        match (r0 != r1, c0 != c1, z0 != z1) {
            (false, true, false) => GridAxis::X,
            (true, false, false) => GridAxis::Y,
            (false, false, true) => GridAxis::Z,
            _ => GridAxis::Cross,
        }
    }

    /// Current ledger balance of one memory class (bytes).
    pub fn mem_balance(&self, class: MemClass) -> u64 {
        self.ledger.balance(class)
    }

    /// Ledger high-water mark so far (bytes).
    pub fn mem_peak(&self) -> u64 {
        self.ledger.peak()
    }

    fn counter(&mut self) -> &mut PhaseCounter {
        self.traffic.entry(self.phase.clone()).or_default()
    }

    /// Apply any stall window whose trigger time has been reached: the
    /// rank pauses for the window's length in simulated time, recorded as
    /// a `Wait` activity under a `fault` span. Stalls are applied at the
    /// send path — the fault layer's injection point.
    fn apply_stalls(&mut self) {
        while let Some(&StallRule { at, secs, .. }) = self.my_stalls.get(self.stall_idx) {
            if self.clock < at {
                break;
            }
            self.stall_idx += 1;
            let sp = self.span_enter(SpanCat::Fault, "stall");
            let t0 = self.clock;
            self.clock += secs;
            self.t_comm += secs;
            self.record(ActivityKind::Wait, t0, self.clock, None, 0, None);
            self.span_exit(sp);
            self.metrics.inc("fault.injected.stall", 1);
            self.metrics.observe("fault.stall_secs", secs);
        }
    }

    /// Send `payload` to local rank `dst` of `comm` with `tag`.
    /// Non-blocking (eager buffering), like `MPI_Send` under the eager
    /// protocol. Charges `α + β·words` of simulated time to this rank.
    ///
    /// This is the injection point of the fault layer
    /// ([`crate::Machine::with_fault_plan`]): a matching plan may stall the
    /// rank, drop/duplicate/delay the message, or degrade the link. With
    /// recovery on ([`crate::Machine::with_retry`]) dropped attempts are
    /// retransmitted after a simulated timeout with exponential backoff —
    /// the receiver sees exactly the fault-free payload sequence, so
    /// results stay bitwise identical and only clocks shift.
    pub fn send(&mut self, comm: &Comm, dst: usize, tag: u64, payload: Payload) {
        if !self.my_stalls.is_empty() {
            self.apply_stalls();
        }
        let dst_world = comm.world_rank_of(dst);
        let (decision, link) = match &self.faults {
            Some(plan) => {
                let max_drops = match &self.retry {
                    Some(r) => r.max_attempts.saturating_sub(1),
                    None => 1,
                };
                (
                    plan.decide(
                        self.world_rank,
                        dst_world,
                        comm.ctx,
                        tag,
                        self.msg_seq,
                        max_drops,
                    ),
                    plan.link_factor(self.world_rank, dst_world, comm.ctx, tag),
                )
            }
            None => (FaultDecision::default(), 1.0),
        };
        if decision.drops > 0 {
            self.metrics
                .inc("fault.injected.drop", u64::from(decision.drops));
            match self.retry {
                Some(retry) => {
                    // Recovery: each lost attempt costs its transfer charge
                    // plus the (backed-off) ack timeout, all in simulated
                    // time; then the loop below sends the attempt that gets
                    // through. Transport-internal attempts carry no message
                    // identity — the offline linter pairs sends and
                    // receives by uid, and these are never received.
                    let words = payload.words();
                    let sp = self.span_enter(SpanCat::Fault, "retransmit");
                    for attempt in 0..decision.drops {
                        let cost = self.model.xfer_on(words, link);
                        let wait = retry.timeout * retry.backoff.powi(attempt as i32);
                        let t0 = self.clock;
                        self.clock += cost;
                        self.record(
                            ActivityKind::Send,
                            t0,
                            self.clock,
                            Some(dst_world),
                            words,
                            None,
                        );
                        let tw = self.clock;
                        self.clock += wait;
                        self.record(ActivityKind::Wait, tw, self.clock, Some(dst_world), 0, None);
                        self.t_comm += cost + wait;
                        // Lost attempts are transport overhead, not
                        // algorithmic volume: they stay out of the traffic
                        // counters and wire ledger so a recovered run
                        // reports the same algorithmic volume as a
                        // fault-free one.
                        self.metrics.inc("fault.resent_msgs", 1);
                        self.metrics.inc("fault.resent_words", words);
                        self.metrics.inc("fault.recovered.retransmit", 1);
                        self.metrics.observe("fault.retry_wait_secs", wait);
                    }
                    self.span_exit(sp);
                }
                None => {
                    // No recovery: the message vanishes in the network. The
                    // sender cannot tell, so it pays and registers the send
                    // normally — the sanitizer is left with an outstanding
                    // send that is never received (a leak naming this
                    // edge), and the receiver usually deadlocks.
                    self.send_physical(
                        comm.ctx, dst_world, tag, payload, link, 0.0, true, false, false,
                    );
                    return;
                }
            }
        }
        if decision.delay > 0.0 {
            self.metrics.inc("fault.injected.delay", 1);
            self.metrics.observe("fault.delay_secs", decision.delay);
        }
        let dup_payload = decision.dup.then(|| payload.clone());
        self.send_physical(
            comm.ctx,
            dst_world,
            tag,
            payload,
            link,
            decision.delay,
            true,
            false,
            true,
        );
        if let Some(p) = dup_payload {
            self.metrics.inc("fault.injected.dup", 1);
            // The duplicate rides right behind the original. With recovery
            // on it is transport-internal (flagged, filtered at the
            // receiver's intake, invisible to the sanitizer); without
            // recovery it is a real protocol-level extra message the
            // sanitizer reports as a leak.
            let recovering = self.retry.is_some();
            self.send_physical(
                comm.ctx,
                dst_world,
                tag,
                p,
                link,
                decision.delay,
                !recovering,
                recovering,
                true,
            );
        }
    }

    /// One physical message: charge the sender, record the activity, hand
    /// the message to the destination channel. `visible` sends carry their
    /// message identity and register with the sanitizer; transport-internal
    /// ones (recovered duplicates) do neither. `deliver: false` models an
    /// unrecovered network drop: the sender pays and registers as usual but
    /// the message never reaches the destination channel. A closed
    /// destination channel means the peer thread died mid-run — an orderly
    /// cascade failure, not a process abort.
    #[allow(clippy::too_many_arguments)]
    fn send_physical(
        &mut self,
        ctx: u64,
        dst_world: usize,
        tag: u64,
        payload: Payload,
        link: f64,
        delay: f64,
        visible: bool,
        injected_dup: bool,
        deliver: bool,
    ) {
        let words = payload.words();
        let cost = self.model.xfer_on(words, link);
        let t0 = self.clock;
        self.clock += cost;
        self.t_comm += cost;
        let uid = ((self.world_rank as u64) << 40) | self.msg_seq;
        self.msg_seq += 1;
        let info = visible.then_some(MsgInfo { uid, ctx, tag });
        self.record(
            ActivityKind::Send,
            t0,
            self.clock,
            Some(dst_world),
            words,
            info,
        );
        if visible {
            self.metrics.inc("msg.sent", 1);
            self.metrics.observe("msg.send_words", words as f64);
            let struct_words = payload.struct_words();
            let class = self.comm_class.unwrap_or(if tag & COLL_TAG != 0 {
                CommClass::Collective
            } else {
                CommClass::Control
            });
            let axis = self.comm_axis(dst_world);
            self.comm
                .charge_send(&self.phase, class, axis, dst_world, words, struct_words, t0);
            let c = self.counter();
            c.sent_msgs += 1;
            c.sent_words += words;
        } else {
            // Transport-internal duplicate under recovery: the network
            // pays, the algorithm doesn't — count it as resend overhead
            // only, like the retransmit attempts above.
            self.metrics.inc("fault.resent_msgs", 1);
            self.metrics.inc("fault.resent_words", words);
        }
        // Sanitizer: the send is an event — tick, register in the
        // outstanding table, and piggyback the clock on the message.
        let clock = match (&self.san, &mut self.vclock) {
            (Some(san), Some(vc)) if visible => {
                vc.tick(self.world_rank);
                san.on_send(
                    uid,
                    SendRec {
                        src: self.world_rank,
                        dst: dst_world,
                        ctx,
                        tag,
                        words,
                        phase: self.phase.clone(),
                        clock: vc.clone(),
                    },
                );
                Some(Box::new(vc.clone()))
            }
            _ => None,
        };
        if !deliver {
            return;
        }
        let msg = Msg {
            src_world: self.world_rank,
            ctx,
            tag,
            arrival: self.clock + delay,
            uid,
            clock,
            link,
            injected_dup,
            payload,
        };
        if self.senders[dst_world].send(msg).is_err() {
            self.fail(FailKind::PeerDown { peer: dst_world });
        }
        // Event backend: a delivered message is a scheduler event — tell
        // the scheduler so a destination parked in a receive wakes up.
        if let Some(evt) = &self.evt {
            evt.note_send(dst_world);
        }
    }

    /// Buffer a message that did not match the receive in progress.
    fn stash(&mut self, m: Msg) {
        self.pending
            .entry((m.ctx, m.src_world, m.tag))
            .or_default()
            .push_back(m);
    }

    fn pop_pending(&mut self, key: (u64, usize, u64)) -> Option<Msg> {
        self.pending.get_mut(&key).and_then(|q| q.pop_front())
    }

    /// Filter one message pulled off the channel. Transport-level
    /// duplicates injected under recovery are consumed here, before any
    /// protocol matching or stashing — the protocol layer never sees them.
    fn intake(&mut self, m: Msg) -> Option<Msg> {
        if m.injected_dup {
            self.metrics.inc("fault.recovered.dup_filtered", 1);
            return None;
        }
        Some(m)
    }

    /// Wait on the inbox for a message satisfying `accept`, buffering
    /// everything else. The caller has already checked `pending`. While
    /// genuinely blocked (channel empty), this rank is registered in the
    /// machine's wait-for graph: the deadlock detector reads it, and a
    /// confirmed deadlock published there aborts the wait immediately with
    /// the cycle report. A wait whose possible senders have all terminated
    /// after another rank failed resolves as a cascade
    /// ([`RecvError::PeerFailed`]); the wall-clock timeout stays as the
    /// last backstop and its report names the whole wait-for-graph state.
    fn blocked_recv(
        &mut self,
        ctx: u64,
        tag: u64,
        targets: Vec<usize>,
        wildcard: bool,
        accept: impl Fn(&Msg) -> bool,
    ) -> Result<Msg, RecvError> {
        // Host-profiler attribution: everything below — including the
        // fast-path drain — is time spent satisfying a receive the
        // algorithm is blocked on.
        let _host = self.host_scope(HostPhase::CommWait);
        // Fast path: drain whatever is already queued without blocking.
        while let Ok(m) = self.inbox.try_recv() {
            let Some(m) = self.intake(m) else { continue };
            if accept(&m) {
                return Ok(m);
            }
            self.stash(m);
        }
        let src_desc = if wildcard {
            "ANY".to_string()
        } else {
            targets.first().map(|t| t.to_string()).unwrap_or_default()
        };
        self.wait_graph.block(
            self.world_rank,
            WaitInfo {
                targets: targets.clone(),
                wildcard,
                ctx,
                tag,
                phase: self.phase.clone(),
            },
        );
        let result = if self.evt.is_some() {
            self.blocked_wait_event(ctx, tag, &targets, &src_desc, &accept)
        } else {
            self.blocked_wait_threaded(ctx, tag, &targets, &src_desc, &accept)
        };
        self.wait_graph.unblock(self.world_rank);
        result
    }

    /// Threaded-backend wait: sleep on the channel in slices, polling for a
    /// published deadlock report, cascade resolution, and the wall-clock
    /// backstop.
    fn blocked_wait_threaded(
        &mut self,
        ctx: u64,
        tag: u64,
        targets: &[usize],
        src_desc: &str,
        accept: &impl Fn(&Msg) -> bool,
    ) -> Result<Msg, RecvError> {
        // det-lint: allow(wall-clock): host watchdog against a hung recv, not simulated time
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            if let Some(report) = self.wait_graph.deadlock_report() {
                return Err(RecvError::Deadlock { report });
            }
            match self.inbox.recv_timeout(BLOCK_SLICE) {
                Ok(m) => {
                    let Some(m) = self.intake(m) else { continue };
                    if accept(&m) {
                        return Ok(m);
                    }
                    self.stash(m);
                }
                Err(_) => {
                    if self.board.has_failure() && self.wait_graph.all_done(targets) {
                        return self.resolve_cascade(ctx, tag, src_desc, accept);
                    }
                    // det-lint: allow(wall-clock): host watchdog check
                    if Instant::now() >= deadline {
                        return Err(RecvError::WallTimeout {
                            src: src_desc.to_string(),
                            ctx,
                            tag,
                            dump: self.wait_graph.dump(),
                        });
                    }
                }
            }
        }
    }

    /// Event-backend wait: no channel sleeping and no wall-clock deadline.
    /// The rank parks by yielding to the cooperative scheduler and is
    /// resumed when a message is delivered to it — or when the scheduler,
    /// seeing the whole machine quiescent, has published a deadlock report
    /// or wants waits on dead peers resolved as cascades.
    fn blocked_wait_event(
        &mut self,
        ctx: u64,
        tag: u64,
        targets: &[usize],
        src_desc: &str,
        accept: &impl Fn(&Msg) -> bool,
    ) -> Result<Msg, RecvError> {
        loop {
            if let Some(report) = self.wait_graph.deadlock_report() {
                return Err(RecvError::Deadlock { report });
            }
            if self.board.has_failure() && self.wait_graph.all_done(targets) {
                return self.resolve_cascade(ctx, tag, src_desc, accept);
            }
            // Park. On resume either a message is waiting in the inbox or
            // the machine went quiescent and the checks above will fire.
            self.evt
                .as_ref()
                .expect("blocked_wait_event outside event mode")
                .yield_blocked();
            while let Ok(m) = self.inbox.try_recv() {
                let Some(m) = self.intake(m) else { continue };
                if accept(&m) {
                    return Ok(m);
                }
                self.stash(m);
            }
        }
    }

    /// Every rank that could satisfy this receive has terminated after a
    /// failure elsewhere. Drain once more — a dying peer may have pushed
    /// the match right before exiting — then give up as a cascade of the
    /// primary failure.
    fn resolve_cascade(
        &mut self,
        ctx: u64,
        tag: u64,
        src_desc: &str,
        accept: &impl Fn(&Msg) -> bool,
    ) -> Result<Msg, RecvError> {
        let mut matched = None;
        while let Ok(m) = self.inbox.try_recv() {
            let Some(m) = self.intake(m) else { continue };
            if matched.is_none() && accept(&m) {
                matched = Some(m);
            } else {
                self.stash(m);
            }
        }
        match matched {
            Some(m) => Ok(m),
            None => Err(RecvError::PeerFailed {
                origin: self.board.primary_rank().unwrap_or(self.world_rank),
                src: src_desc.to_string(),
                ctx,
                tag,
            }),
        }
    }

    /// Receiver-side accounting shared by [`Rank::recv`] and
    /// [`Rank::recv_any`]: clock advance, trace activities, traffic
    /// counters, and the sanitizer's clock merge.
    fn complete_recv(&mut self, msg: Msg) -> Result<Payload, RecvError> {
        let src_world = msg.src_world;
        let words = msg.payload.words();
        // Receiver-side charge: wait until the message is available, then
        // pay the transfer cost.
        let ready = msg.arrival.max(self.clock);
        if let Some(d) = self.recv_deadline {
            let waited = ready - self.clock;
            if waited > d {
                // The message did arrive, so the sanitizer's outstanding
                // entry must still retire — the reportable failure is the
                // deadline, not a spurious message leak.
                if let Some(san) = &self.san {
                    if let Some(vc) = &mut self.vclock {
                        if let Some(sender_clock) = &msg.clock {
                            vc.merge(sender_clock);
                        }
                        vc.tick(self.world_rank);
                    }
                    san.on_recv(msg.uid);
                }
                return Err(RecvError::Deadline {
                    src: src_world,
                    ctx: msg.ctx,
                    tag: msg.tag,
                    waited,
                    deadline: d,
                });
            }
        }
        let done = ready + self.model.xfer_on(words, msg.link);
        // The message's bytes occupy this rank's receive buffers for the
        // transfer window [ready, done]: charged when the transfer starts,
        // credited when the receive consumes them. Both endpoints are pure
        // simulated-time quantities — charging at physical channel arrival
        // would depend on wall-clock thread interleaving and break run
        // determinism. Level 0 on both sides so a tree-level change during
        // the window cannot unbalance the ledger.
        self.ledger
            .charge_at(MemClass::MsgInFlight, 0, words * 8, ready);
        self.t_comm += done - self.clock;
        if ready > self.clock {
            self.metrics.observe("recv.wait_secs", ready - self.clock);
        }
        self.record(
            ActivityKind::Wait,
            self.clock,
            ready,
            Some(src_world),
            0,
            None,
        );
        self.record(
            ActivityKind::Recv,
            ready,
            done,
            Some(src_world),
            words,
            Some(MsgInfo {
                uid: msg.uid,
                ctx: msg.ctx,
                tag: msg.tag,
            }),
        );
        self.clock = done;
        self.ledger
            .credit_at(MemClass::MsgInFlight, 0, words * 8, done);
        self.comm.charge_recv(src_world, words);
        {
            let c = self.counter();
            c.recv_msgs += 1;
            c.recv_words += words;
        }
        // Sanitizer: absorb the sender's clock (this receive happens after
        // the send), tick our own event, retire the outstanding entry.
        if let Some(san) = &self.san {
            if let Some(vc) = &mut self.vclock {
                if let Some(sender_clock) = &msg.clock {
                    vc.merge(sender_clock);
                }
                vc.tick(self.world_rank);
            }
            san.on_recv(msg.uid);
        }
        Ok(msg.payload)
    }

    /// Convert a failed receive into an orderly rank failure.
    fn fail_recv(&self, e: RecvError) -> ! {
        self.fail(FailKind::Recv(e))
    }

    /// Blocking receive of the message from local rank `src` of `comm` with
    /// `tag`. Advances this rank's clock to at least the message arrival
    /// time plus the transfer charge; waiting time counts as communication.
    ///
    /// A receive that cannot complete fails the rank in an orderly way
    /// (recorded on the machine's failure board): a deadlock within ~100ms
    /// via the sanitizer's detector (naming the exact cycle), a wait whose
    /// peers all died as a cascade, a late arrival past the simulated
    /// deadline, or the wall-clock backstop — failing loudly beats hanging
    /// the test suite. Use [`Rank::recv_checked`] to handle the error
    /// instead.
    pub fn recv(&mut self, comm: &Comm, src: usize, tag: u64) -> Payload {
        match self.recv_checked(comm, src, tag) {
            Ok(p) => p,
            Err(e) => self.fail_recv(e),
        }
    }

    /// Like [`Rank::recv`], but surfaces the failure to the caller so
    /// solver layers can attach algorithmic context (phase, supernode)
    /// before failing the rank.
    pub fn recv_checked(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: u64,
    ) -> Result<Payload, RecvError> {
        let src_world = comm.world_rank_of(src);
        let key = (comm.ctx, src_world, tag);
        let msg = match self.pop_pending(key) {
            Some(m) => m,
            None => self.blocked_recv(comm.ctx, tag, vec![src_world], false, |m| {
                (m.ctx, m.src_world, m.tag) == key
            })?,
        };
        self.complete_recv(msg)
    }

    /// Receive and unwrap an `F64s` payload. A kind mismatch fails the rank
    /// with a structured [`FailKind::PayloadMismatch`] carrying the message
    /// provenance (src/ctx/tag/phase) instead of a bare panic.
    pub fn recv_f64s(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<f64> {
        let src_world = comm.world_rank_of(src);
        match self.recv(comm, src, tag).try_into_f64s() {
            Ok(v) => v,
            Err(e) => self.fail(FailKind::PayloadMismatch {
                expected: e.expected,
                got: e.got,
                src: src_world,
                ctx: comm.ctx,
                tag,
            }),
        }
    }

    /// Receive and unwrap an `Idx` payload; see [`Rank::recv_f64s`].
    pub fn recv_idx(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<usize> {
        let src_world = comm.world_rank_of(src);
        match self.recv(comm, src, tag).try_into_idx() {
            Ok(v) => v,
            Err(e) => self.fail(FailKind::PayloadMismatch {
                expected: e.expected,
                got: e.got,
                src: src_world,
                ctx: comm.ctx,
                tag,
            }),
        }
    }

    /// Receive and unwrap a `Packed` payload; see [`Rank::recv_f64s`].
    pub fn recv_packed(&mut self, comm: &Comm, src: usize, tag: u64) -> (Vec<usize>, Vec<f64>) {
        let src_world = comm.world_rank_of(src);
        match self.recv(comm, src, tag).try_into_packed() {
            Ok(v) => v,
            Err(e) => self.fail(FailKind::PayloadMismatch {
                expected: e.expected,
                got: e.got,
                src: src_world,
                ctx: comm.ctx,
                tag,
            }),
        }
    }

    /// Wildcard receive (`MPI_ANY_SOURCE`): the next message on `comm` with
    /// `tag` from *any* member. Returns the sender's local rank and the
    /// payload.
    ///
    /// Which message matches depends on arrival order, so two concurrent
    /// senders make the result nondeterministic — exactly what the
    /// sanitizer's happens-before race check flags
    /// ([`commcheck::Finding::Race`]). Prefer deterministic-source
    /// [`Rank::recv`] in algorithm code; this exists for opportunistic
    /// work-stealing patterns and for exercising the race detector.
    pub fn recv_any(&mut self, comm: &Comm, tag: u64) -> (usize, Payload) {
        let ctx = comm.ctx;
        // Pull everything already queued into `pending`, then scan members
        // in local-rank order so the buffered case is deterministic.
        while let Ok(m) = self.inbox.try_recv() {
            if let Some(m) = self.intake(m) {
                self.stash(m);
            }
        }
        let mut found = None;
        for &w in comm.members().iter() {
            if let Some(m) = self.pop_pending((ctx, w, tag)) {
                found = Some(m);
                break;
            }
        }
        let msg = match found {
            Some(m) => m,
            None => {
                let targets: Vec<usize> = comm
                    .members()
                    .iter()
                    .copied()
                    .filter(|&w| w != self.world_rank)
                    .collect();
                match self.blocked_recv(ctx, tag, targets, true, |m| m.ctx == ctx && m.tag == tag) {
                    Ok(m) => m,
                    Err(e) => self.fail_recv(e),
                }
            }
        };
        // Race check must see the matched send while it is still
        // outstanding (complete_recv retires it).
        if let Some(san) = &self.san {
            san.check_wildcard_match(self.world_rank, ctx, tag, msg.uid, &self.phase);
        }
        // A match from outside the communicator means another rank created
        // a different communicator under the same context id (a broken
        // collective `subset` call). Fail the rank in an orderly way with
        // the full message provenance — the phase rides on the failure
        // record — instead of the historical bare panic.
        let src_local = match comm.local_rank_of_world(msg.src_world) {
            Some(l) => l,
            None => self.fail(FailKind::NonMemberMatch {
                src: msg.src_world,
                ctx,
                tag,
            }),
        };
        let payload = match self.complete_recv(msg) {
            Ok(p) => p,
            Err(e) => self.fail_recv(e),
        };
        (src_local, payload)
    }

    /// Charge `flops` floating-point operations of compute time.
    pub fn advance_compute(&mut self, flops: u64) {
        let cost = self.model.compute(flops);
        let t0 = self.clock;
        self.clock += cost;
        self.t_comp += cost;
        self.flops += flops;
        self.record(ActivityKind::Compute, t0, self.clock, None, 0, None);
    }

    /// Record a memory gauge (bytes currently allocated by the caller);
    /// keeps the peak for the final report.
    pub fn record_memory(&mut self, bytes: u64) {
        self.peak_mem = self.peak_mem.max(bytes);
        self.metrics.gauge_max("mem.peak_bytes", bytes as f64);
    }

    /// Current simulated clock in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Snapshot the final report (called by the machine after the SPMD
    /// closure returns). Closes any spans left open.
    pub(crate) fn into_report(self, wall_secs: f64) -> RankReport {
        let clock = self.clock;
        let mut ledger = self.ledger;
        let mem_timeline = ledger.take_timeline();
        let memprof = ledger.report();
        let mut wire = self.comm;
        let comm_timeline = wire.take_timeline();
        let commvol = wire.report();
        let host_timeline = self
            .host
            .as_ref()
            .map(|h| h.take_timeline())
            .unwrap_or_default();
        let hostprof = self
            .host
            .as_ref()
            .map(|h| h.report(wall_secs, self.flops, commvol.sent_words()));
        // Ledger-driven high-water mark; `record_memory` snapshots (if any)
        // are folded in so untagged callers still count.
        let peak_mem = self.peak_mem.max(memprof.peak_bytes);
        let mut metrics = self.metrics;
        metrics.gauge_max("mem.peak_bytes", peak_mem as f64);
        RankReport {
            // det-lint: allow(unordered): collected into the report's BTreeMap
            traffic: self.traffic.into_iter().collect(),
            clock,
            t_comm: self.t_comm,
            t_comp: self.t_comp,
            flops: self.flops,
            peak_mem_bytes: peak_mem,
            wall_secs,
            metrics,
            memprof,
            commvol,
            hostprof,
            trace: self.rec.map(|rec| {
                let mut obs = rec.finish(clock);
                obs.mem = mem_timeline;
                obs.comm = comm_timeline;
                obs.host = host_timeline;
                obs
            }),
        }
    }
}
