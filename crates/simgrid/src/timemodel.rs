//! The α-β + flop-rate machine model.
//!
//! Simulated time is charged in three ways:
//!
//! - sending or receiving a message of `w` words costs `α + β·w` on the
//!   participating rank,
//! - the message becomes *available* to the receiver `α + β·w` after the
//!   sender initiated it (so a late sender stalls its receivers — this is
//!   what propagates load imbalance into synchronization time, the effect
//!   the paper observes for `K2d5pt` in §V-B),
//! - `f` floating-point operations cost `f / flops_per_sec`.
//!
//! The constants only set the *scale* of results; every figure in the paper
//! is either machine-independent (words, messages, bytes) or normalized to
//! the 2D baseline on the same machine, so shapes are insensitive to the
//! exact values.

/// Machine-model constants for the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeModel {
    /// Per-message latency in seconds (the `α` term).
    pub alpha: f64,
    /// Per-word (8 bytes) transfer time in seconds (the `β` term).
    pub beta: f64,
    /// Sustained per-rank compute rate in flop/s.
    pub flops_per_sec: f64,
}

impl TimeModel {
    /// Constants shaped after a NERSC Edison (Cray XC30, Aries) node as used
    /// in the paper: ~1-3 µs MPI latency, ~6-8 GB/s per-process effective
    /// bandwidth, and roughly 4 Ivy Bridge cores' worth of DGEMM throughput
    /// per MPI rank (the paper runs 4 OpenMP threads per rank).
    pub fn edison_like() -> Self {
        TimeModel {
            alpha: 3.0e-6,
            beta: 1.25e-9,
            flops_per_sec: 3.0e10,
        }
    }

    /// A zero-cost model: simulated clocks stay at zero; useful in tests
    /// that only check traffic counters.
    pub fn zero() -> Self {
        TimeModel {
            alpha: 0.0,
            beta: 0.0,
            flops_per_sec: f64::INFINITY,
        }
    }

    /// A latency-dominated toy machine (big α, small β): exaggerates the
    /// message-count effects, used by latency-oriented tests.
    pub fn latency_bound() -> Self {
        TimeModel {
            alpha: 1.0e-3,
            beta: 1.0e-12,
            flops_per_sec: 1.0e15,
        }
    }

    /// Transfer time for a `w`-word message.
    #[inline]
    pub fn xfer(&self, words: u64) -> f64 {
        self.alpha + self.beta * words as f64
    }

    /// Transfer time over a (possibly degraded) link: the whole `α + β·w`
    /// term scales by `factor` (latency and bandwidth degrade together —
    /// the `degrade:` rules of `simgrid::faultlab`). `factor == 1.0` is
    /// bit-for-bit the healthy [`TimeModel::xfer`] cost.
    #[inline]
    pub fn xfer_on(&self, words: u64, factor: f64) -> f64 {
        if factor == 1.0 {
            self.xfer(words)
        } else {
            self.xfer(words) * factor
        }
    }

    /// Compute time for `f` flops.
    #[inline]
    pub fn compute(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_and_compute_costs() {
        let m = TimeModel {
            alpha: 1.0,
            beta: 0.5,
            flops_per_sec: 10.0,
        };
        assert_eq!(m.xfer(4), 3.0);
        assert_eq!(m.compute(20), 2.0);
        assert_eq!(m.xfer_on(4, 1.0), m.xfer(4));
        assert_eq!(m.xfer_on(4, 10.0), 30.0);
    }

    #[test]
    fn zero_model_is_free() {
        let m = TimeModel::zero();
        assert_eq!(m.xfer(1_000_000), 0.0);
        assert_eq!(m.compute(u64::MAX), 0.0);
    }
}
