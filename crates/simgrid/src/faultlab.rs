//! Deterministic fault injection and recovery for the simulated machine.
//!
//! The paper's algorithm is pitched at 1024-node runs where slow links,
//! stragglers, and dropped messages are the norm. This module gives the
//! simulator a *seeded, deterministic* fault model so chaos runs are exactly
//! reproducible — the injected schedule is a pure function of the plan seed
//! and each message's protocol identity `(src, dst, ctx, tag, seq)`, never
//! of wall-clock thread interleaving:
//!
//! - [`FaultPlan`]: per-edge message **drop / duplicate / delay** rules,
//!   per-rank **stall windows**, and **link-degradation** factors applied in
//!   the α-β time model. Built programmatically or parsed from the compact
//!   spec grammar of [`FaultPlan::parse`] (the `salu --faults` syntax).
//! - [`RetryPolicy`]: the recovery half — an ack/retransmit protocol with
//!   timeout + exponential backoff for droppable sends, simulated entirely
//!   in simulated time (see `Rank::send`). With recovery on, a faulted run
//!   delivers the exact same payload sequence as the fault-free run, so
//!   factors stay bitwise identical; only the clocks shift.
//! - [`FailureBoard`] / [`RankFailure`]: structured rank-failure collection
//!   replacing the panic-happy error paths. The first failure is recorded
//!   as *primary*; ranks that die in its wake (peer channels closed, waits
//!   that can never complete) are recorded as *cascade* failures, so
//!   [`crate::Machine::try_run`] reports the original failing rank instead
//!   of whichever thread happened to abort first.
//!
//! Interaction with `commcheck`: recovery-internal retransmissions and
//! filtered duplicates are transport-level events — invisible to the
//! sanitizer, which audits the *protocol* level. An unrecovered drop, by
//! contrast, leaves the sanitizer's outstanding-send table unbalanced (a
//! leak naming the edge) and usually deadlocks the receiver (caught by the
//! wait-for-graph detector). See `docs/faultlab.md`.

use crate::payload::PayloadKind;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Filter selecting the message edges a fault rule applies to. `None`
/// fields match anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeFilter {
    /// Sender world rank.
    pub src: Option<usize>,
    /// Destination world rank.
    pub dst: Option<usize>,
    /// Communicator context id.
    pub ctx: Option<u64>,
    /// Message tag (exact match, after any collective namespacing).
    pub tag: Option<u64>,
}

impl EdgeFilter {
    /// The match-everything filter.
    pub fn any() -> Self {
        EdgeFilter::default()
    }

    fn matches(&self, src: usize, dst: usize, ctx: u64, tag: u64) -> bool {
        self.src.is_none_or(|v| v == src)
            && self.dst.is_none_or(|v| v == dst)
            && self.ctx.is_none_or(|v| v == ctx)
            && self.tag.is_none_or(|v| v == tag)
    }
}

/// What a matching [`FaultRule`] does to a message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Drop the message with probability `p` (per physical attempt: with
    /// recovery on, each retransmission re-rolls until one gets through or
    /// the retry budget caps out).
    Drop { p: f64 },
    /// Deliver a second, identical copy with probability `p`.
    Dup { p: f64 },
    /// Add `secs` of simulated in-flight latency with probability `p`.
    Delay { p: f64, secs: f64 },
}

/// One edge-scoped fault rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    pub edge: EdgeFilter,
    pub action: FaultAction,
}

/// A rank pauses for `secs` of simulated time at the first send at or after
/// simulated time `at` (stalls are applied at the send path, the injection
/// point of the fault layer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallRule {
    pub rank: usize,
    pub at: f64,
    pub secs: f64,
}

/// Transfer on matching edges costs `factor ×` the model's `α + β·w`
/// (degraded link), charged on both the sender and the receiver side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkRule {
    pub edge: EdgeFilter,
    pub factor: f64,
}

/// A seeded, deterministic fault plan. Decisions are pure functions of
/// `(seed, src, dst, ctx, tag, seq)` where `seq` is the sender's per-rank
/// message sequence number — identical across runs by SPMD determinism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
    pub stalls: Vec<StallRule>,
    pub links: Vec<LinkRule>,
}

/// The faults decided for one logical message.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultDecision {
    /// Number of physical attempts eaten by the network before one gets
    /// through (0 = first attempt delivered). Without recovery this is
    /// capped at 1 and means the message is simply lost.
    pub drops: u32,
    /// Deliver a duplicate copy behind the original.
    pub dup: bool,
    /// Extra in-flight latency (seconds of simulated time).
    pub delay: f64,
}

/// SplitMix64: tiny, high-quality, and dependency-free — exactly what a
/// deterministic decision hash needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with a seed and no rules (useful as a builder base).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// True when the plan can never affect anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.stalls.is_empty() && self.links.is_empty()
    }

    /// A uniform draw in `[0, 1)` for one `(message identity, salt)` pair.
    /// Deterministic chain of SplitMix64 steps over the key components.
    fn draw(&self, salt: u64, src: usize, dst: usize, ctx: u64, tag: u64, seq: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ salt);
        for v in [src as u64, dst as u64, ctx, tag, seq] {
            h = splitmix64(h ^ v);
        }
        // 53 high bits -> [0, 1) with full double precision.
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decide the faults for the logical message `(src, dst, ctx, tag)`
    /// with sender sequence number `seq`. `max_drops` caps the number of
    /// consecutive lost attempts (retry budget − 1 with recovery on, 1
    /// without).
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        ctx: u64,
        tag: u64,
        seq: u64,
        max_drops: u32,
    ) -> FaultDecision {
        let mut d = FaultDecision::default();
        for (ri, rule) in self.rules.iter().enumerate() {
            if !rule.edge.matches(src, dst, ctx, tag) {
                continue;
            }
            // Each rule draws from its own salt stream (keyed by rule
            // index) so rules never consume each other's randomness.
            let salt = (ri as u64) << 32;
            match rule.action {
                FaultAction::Drop { p } => {
                    // Per-attempt loss: geometric run of failed attempts,
                    // each attempt re-drawn under its own salt.
                    let mut k = 0u32;
                    while k < max_drops
                        && self.draw(salt | u64::from(k) | 0x1_0000, src, dst, ctx, tag, seq) < p
                    {
                        k += 1;
                    }
                    d.drops = d.drops.max(k);
                }
                FaultAction::Dup { p } => {
                    if self.draw(salt | 0x2_0000, src, dst, ctx, tag, seq) < p {
                        d.dup = true;
                    }
                }
                FaultAction::Delay { p, secs } => {
                    if self.draw(salt | 0x3_0000, src, dst, ctx, tag, seq) < p {
                        d.delay += secs;
                    }
                }
            }
        }
        d
    }

    /// Combined link-degradation factor for an edge (product over matching
    /// rules; 1.0 when none match).
    pub fn link_factor(&self, src: usize, dst: usize, ctx: u64, tag: u64) -> f64 {
        let mut f = 1.0;
        for rule in &self.links {
            if rule.edge.matches(src, dst, ctx, tag) {
                f *= rule.factor;
            }
        }
        f
    }

    /// Stall windows for one rank, sorted by trigger time.
    pub fn stalls_for(&self, rank: usize) -> Vec<StallRule> {
        let mut v: Vec<StallRule> = self
            .stalls
            .iter()
            .copied()
            .filter(|s| s.rank == rank)
            .collect();
        v.sort_by(|a, b| a.at.total_cmp(&b.at));
        v
    }

    /// Parse the `salu --faults` spec grammar:
    ///
    /// ```text
    /// SPEC    := clause (';' clause)*
    /// clause  := drop | dup | delay | stall | degrade
    /// drop    := "drop:"    "p=" f64 edge*
    /// dup     := "dup:"     "p=" f64 edge*
    /// delay   := "delay:"   "p=" f64 ",secs=" f64 edge*
    /// stall   := "stall:"   "rank=" usize ",at=" f64 ",secs=" f64
    /// degrade := "degrade:" "factor=" f64 edge*
    /// edge    := ",src=" usize | ",dst=" usize | ",ctx=" u64 | ",tag=" u64
    /// ```
    ///
    /// Example: `drop:p=0.05,src=1,dst=0;delay:p=0.2,secs=1e-4;stall:rank=2,at=0.01,secs=0.5`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(seed);
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| format!("fault clause `{clause}` is missing `kind:`"))?;
            let mut p = None;
            let mut secs = None;
            let mut factor = None;
            let mut rank = None;
            let mut at = None;
            let mut edge = EdgeFilter::any();
            for kv in body.split(',').filter(|s| !s.trim().is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("fault clause `{clause}`: `{kv}` is not key=value"))?;
                let bad = |what: &str| format!("fault clause `{clause}`: bad {what} `{v}`");
                match k.trim() {
                    "p" => p = Some(v.parse::<f64>().map_err(|_| bad("probability"))?),
                    "secs" => secs = Some(v.parse::<f64>().map_err(|_| bad("seconds"))?),
                    "factor" => factor = Some(v.parse::<f64>().map_err(|_| bad("factor"))?),
                    "rank" => rank = Some(v.parse::<usize>().map_err(|_| bad("rank"))?),
                    "at" => at = Some(v.parse::<f64>().map_err(|_| bad("time"))?),
                    "src" => edge.src = Some(v.parse().map_err(|_| bad("src"))?),
                    "dst" => edge.dst = Some(v.parse().map_err(|_| bad("dst"))?),
                    "ctx" => edge.ctx = Some(v.parse().map_err(|_| bad("ctx"))?),
                    "tag" => edge.tag = Some(v.parse().map_err(|_| bad("tag"))?),
                    other => return Err(format!("fault clause `{clause}`: unknown key `{other}`")),
                }
            }
            let need_p = || p.ok_or_else(|| format!("fault clause `{clause}` needs p="));
            match kind.trim() {
                "drop" => plan.rules.push(FaultRule {
                    edge,
                    action: FaultAction::Drop { p: need_p()? },
                }),
                "dup" => plan.rules.push(FaultRule {
                    edge,
                    action: FaultAction::Dup { p: need_p()? },
                }),
                "delay" => plan.rules.push(FaultRule {
                    edge,
                    action: FaultAction::Delay {
                        p: need_p()?,
                        secs: secs.ok_or_else(|| format!("fault clause `{clause}` needs secs="))?,
                    },
                }),
                "stall" => plan.stalls.push(StallRule {
                    rank: rank.ok_or_else(|| format!("fault clause `{clause}` needs rank="))?,
                    at: at.ok_or_else(|| format!("fault clause `{clause}` needs at="))?,
                    secs: secs.ok_or_else(|| format!("fault clause `{clause}` needs secs="))?,
                }),
                "degrade" => plan.links.push(LinkRule {
                    edge,
                    factor: factor
                        .ok_or_else(|| format!("fault clause `{clause}` needs factor="))?,
                }),
                other => return Err(format!("unknown fault kind `{other}` in `{clause}`")),
            }
        }
        Ok(plan)
    }
}

/// Recovery knobs for droppable sends: a (simulated) ack timeout with
/// exponential backoff, capping the total number of physical attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Simulated seconds the sender waits for the (implicit) ack before the
    /// first retransmission.
    pub timeout: f64,
    /// Multiplier applied to the timeout after each failed attempt.
    pub backoff: f64,
    /// Total physical send attempts (1 original + `max_attempts - 1`
    /// retransmissions). The fault layer never drops the last attempt, so
    /// a recovered run always delivers.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 1e-3,
            backoff: 2.0,
            max_attempts: 5,
        }
    }
}

/// Why a blocking receive gave up. Returned by the `_checked` receive
/// variants; the panicking variants convert it into a [`RankFailure`].
#[derive(Clone, Debug, PartialEq)]
pub enum RecvError {
    /// The matching message arrived, but later than the machine's simulated
    /// receive deadline allows (`Machine::with_recv_deadline`).
    Deadline {
        src: usize,
        ctx: u64,
        tag: u64,
        /// Simulated seconds this rank would have waited.
        waited: f64,
        deadline: f64,
    },
    /// The wait-for-graph detector confirmed a deadlock involving this
    /// rank; `report` names the exact cycle.
    Deadlock { report: String },
    /// Every rank that could have satisfied this receive terminated after
    /// rank `origin` failed — the wait can never complete.
    PeerFailed {
        origin: usize,
        src: String,
        ctx: u64,
        tag: u64,
    },
    /// The wall-clock backstop expired (`SALU_RECV_TIMEOUT_SECS`).
    WallTimeout {
        src: String,
        ctx: u64,
        tag: u64,
        dump: String,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Deadline {
                src,
                ctx,
                tag,
                waited,
                deadline,
            } => write!(
                f,
                "recv deadline exceeded waiting for (ctx={ctx}, src={src}, tag={tag}): \
                 {waited:.3e}s of simulated wait > deadline {deadline:.3e}s"
            ),
            RecvError::Deadlock { report } => write!(f, "aborted by commcheck\n{report}"),
            RecvError::PeerFailed {
                origin,
                src,
                ctx,
                tag,
            } => write!(
                f,
                "aborted while waiting for (ctx={ctx}, src={src}, tag={tag}): \
                 peers terminated after rank {origin} failed"
            ),
            RecvError::WallTimeout {
                src,
                ctx,
                tag,
                dump,
            } => write!(
                f,
                "recv timeout waiting for (ctx={ctx}, src={src}, tag={tag})\n{dump}"
            ),
        }
    }
}

/// The structured cause of one rank's failure.
#[derive(Clone, Debug)]
pub enum FailKind {
    /// A blocking receive gave up (deadline, deadlock, dead peers, wall
    /// timeout).
    Recv(RecvError),
    /// A send found the peer's inbox closed: the peer thread is gone
    /// mid-run, i.e. it failed first.
    PeerDown { peer: usize },
    /// A typed receive got the wrong payload kind — a protocol error, now
    /// with full provenance instead of a bare `panic!`.
    PayloadMismatch {
        expected: PayloadKind,
        got: PayloadKind,
        src: usize,
        ctx: u64,
        tag: u64,
    },
    /// A solver-level failure surfaced gracefully (e.g. a stalled z-layer
    /// in `factor_3d`), carrying algorithmic context.
    Solver {
        phase: String,
        supernode: Option<usize>,
        level: Option<usize>,
        detail: String,
    },
    /// A wildcard receive matched a message whose sender is not a member
    /// of the receiving communicator: communicator-context aliasing, i.e.
    /// some rank broke [`crate::Rank::subset`]'s collective, same-order
    /// contract. Carries the message provenance (the failing rank's phase
    /// rides on the [`RankFailure`] record).
    NonMemberMatch { src: usize, ctx: u64, tag: u64 },
    /// An invalid machine configuration rejected before any rank ran
    /// (e.g. host profiling requested under the event backend).
    Config { detail: String },
    /// An uncategorized panic unwound out of the SPMD closure.
    Panic { message: String },
}

impl FailKind {
    /// Failures caused by *another* rank's death are cascades; the board
    /// demotes them below primary causes when attributing the run failure.
    pub fn is_cascade(&self) -> bool {
        matches!(
            self,
            FailKind::PeerDown { .. } | FailKind::Recv(RecvError::PeerFailed { .. })
        )
    }
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailKind::Recv(e) => write!(f, "{e}"),
            FailKind::PeerDown { peer } => {
                write!(f, "send failed: peer rank {peer} terminated mid-run")
            }
            FailKind::PayloadMismatch {
                expected,
                got,
                src,
                ctx,
                tag,
            } => write!(
                f,
                "payload kind mismatch on recv (ctx={ctx}, src={src}, tag={tag}): \
                 expected {expected:?}, got {got:?}"
            ),
            FailKind::Solver {
                phase,
                supernode,
                level,
                detail,
            } => {
                write!(f, "solver failure in phase `{phase}`")?;
                if let Some(s) = supernode {
                    write!(f, ", supernode {s}")?;
                }
                if let Some(l) = level {
                    write!(f, ", level {l}")?;
                }
                write!(f, ": {detail}")
            }
            FailKind::NonMemberMatch { src, ctx, tag } => write!(
                f,
                "wildcard recv matched a message from world rank {src}, which is \
                 not a member of the receiving communicator (ctx={ctx}, tag={tag}): \
                 communicator contexts are aliased — `subset` must be called \
                 collectively, in the same order, with the same members on every rank"
            ),
            FailKind::Config { detail } => write!(f, "configuration error: {detail}"),
            FailKind::Panic { message } => write!(f, "{message}"),
        }
    }
}

/// One rank's recorded failure.
#[derive(Clone, Debug)]
pub struct RankFailure {
    pub rank: usize,
    /// Traffic phase active when the rank failed (empty for raw panics).
    pub phase: String,
    pub kind: FailKind,
    /// Arrival order on the board (0 = first failure observed).
    pub seq: u64,
}

impl RankFailure {
    /// True when this failure was caused by another rank's death.
    pub fn is_cascade(&self) -> bool {
        self.kind.is_cascade()
    }
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}: {}", self.rank, self.kind)
    }
}

/// Panic payload used for orderly rank aborts: the failure is already on
/// the board, so the machine must not re-record (or re-print) it.
pub(crate) struct OrderlyAbort;

/// Machine-wide failure collection, shared by every rank thread. Lock-free
/// fast path for the "has anything failed yet?" poll in blocked receives.
#[derive(Debug, Default)]
pub struct FailureBoard {
    failures: Mutex<Vec<RankFailure>>,
    next_seq: AtomicU64,
    any: AtomicBool,
}

impl FailureBoard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a failure; assigns its arrival sequence number.
    pub fn record(&self, mut failure: RankFailure) {
        failure.seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        self.failures.lock().unwrap().push(failure);
        self.any.store(true, Ordering::SeqCst);
    }

    /// Cheap poll: has any rank failed?
    pub fn has_failure(&self) -> bool {
        self.any.load(Ordering::Relaxed)
    }

    /// The rank of the primary (non-cascade, earliest) failure, if any.
    pub fn primary_rank(&self) -> Option<usize> {
        let failures = self.failures.lock().unwrap();
        failures
            .iter()
            .filter(|f| !f.is_cascade())
            .min_by_key(|f| f.seq)
            .or_else(|| failures.iter().min_by_key(|f| f.seq))
            .map(|f| f.rank)
    }

    /// Drain the board into a failure list sorted by arrival.
    pub fn into_failures(self) -> Vec<RankFailure> {
        let mut v = self.failures.into_inner().unwrap();
        v.sort_by_key(|f| f.seq);
        v
    }
}

/// The structured outcome of a failed [`crate::Machine::try_run`].
#[derive(Clone, Debug)]
pub struct MachineFailure {
    /// Every recorded rank failure, in arrival order.
    pub failures: Vec<RankFailure>,
}

impl MachineFailure {
    /// The failure the run should be attributed to: the earliest
    /// *non-cascade* failure, falling back to the earliest overall.
    pub fn primary(&self) -> &RankFailure {
        self.failures
            .iter()
            .filter(|f| !f.is_cascade())
            .min_by_key(|f| f.seq)
            .or_else(|| self.failures.iter().min_by_key(|f| f.seq))
            .expect("MachineFailure must hold at least one failure")
    }

    /// Render for the legacy panic path: leads with the primary failure in
    /// the historical `simulated rank R panicked: ...` shape, then lists
    /// cascades one line each.
    pub fn render(&self) -> String {
        let primary = self.primary();
        let mut out = format!("simulated rank {} panicked: {}", primary.rank, primary.kind);
        for f in &self.failures {
            if std::ptr::eq(f, primary) {
                continue;
            }
            let first_line = f.kind.to_string();
            let first_line = first_line.lines().next().unwrap_or("").to_string();
            out.push_str(&format!("\n  [cascade] rank {}: {}", f.rank, first_line));
        }
        out
    }
}

impl fmt::Display for MachineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![
                FaultRule {
                    edge: EdgeFilter::any(),
                    action: FaultAction::Drop { p: 0.3 },
                },
                FaultRule {
                    edge: EdgeFilter::any(),
                    action: FaultAction::Delay { p: 0.5, secs: 2.0 },
                },
            ],
            ..Default::default()
        };
        let a: Vec<FaultDecision> = (0..64).map(|s| plan.decide(0, 1, 0, 7, s, 4)).collect();
        let b: Vec<FaultDecision> = (0..64).map(|s| plan.decide(0, 1, 0, 7, s, 4)).collect();
        assert_eq!(a, b, "same plan, same identity => same decisions");
        let other = FaultPlan { seed: 43, ..plan };
        let c: Vec<FaultDecision> = (0..64).map(|s| other.decide(0, 1, 0, 7, s, 4)).collect();
        assert_ne!(a, c, "different seed must change the schedule");
        // With p in (0,1), both outcomes appear over 64 messages.
        assert!(a.iter().any(|d| d.drops > 0));
        assert!(a.iter().any(|d| d.drops == 0));
        assert!(a.iter().any(|d| d.delay > 0.0));
    }

    #[test]
    fn drop_p1_caps_at_retry_budget() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                edge: EdgeFilter::any(),
                action: FaultAction::Drop { p: 1.0 },
            }],
            ..Default::default()
        };
        let d = plan.decide(0, 1, 0, 0, 0, 4);
        assert_eq!(d.drops, 4, "p=1 eats the whole retry budget");
        let d1 = plan.decide(0, 1, 0, 0, 0, 1);
        assert_eq!(d1.drops, 1, "without recovery a drop is one lost message");
    }

    #[test]
    fn edge_filters_scope_rules() {
        let plan = FaultPlan {
            seed: 9,
            rules: vec![FaultRule {
                edge: EdgeFilter {
                    src: Some(1),
                    dst: Some(0),
                    tag: Some(33),
                    ..Default::default()
                },
                action: FaultAction::Drop { p: 1.0 },
            }],
            ..Default::default()
        };
        assert_eq!(plan.decide(1, 0, 0, 33, 5, 1).drops, 1);
        assert_eq!(plan.decide(0, 1, 0, 33, 5, 1).drops, 0, "wrong direction");
        assert_eq!(plan.decide(1, 0, 0, 34, 5, 1).drops, 0, "wrong tag");
    }

    #[test]
    fn link_factor_multiplies_matching_rules() {
        let plan = FaultPlan {
            seed: 0,
            links: vec![
                LinkRule {
                    edge: EdgeFilter {
                        src: Some(0),
                        ..Default::default()
                    },
                    factor: 4.0,
                },
                LinkRule {
                    edge: EdgeFilter {
                        dst: Some(1),
                        ..Default::default()
                    },
                    factor: 2.5,
                },
            ],
            ..Default::default()
        };
        assert_eq!(plan.link_factor(0, 1, 0, 0), 10.0);
        assert_eq!(plan.link_factor(0, 2, 0, 0), 4.0);
        assert_eq!(plan.link_factor(3, 2, 0, 0), 1.0);
    }

    #[test]
    fn parse_roundtrips_the_grammar() {
        let plan = FaultPlan::parse(
            "drop:p=0.05,src=1,dst=0; dup:p=0.1,tag=7; delay:p=0.2,secs=1e-4; \
             stall:rank=2,at=0.01,secs=0.5; degrade:factor=8,ctx=3",
            77,
        )
        .unwrap();
        assert_eq!(plan.seed, 77);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                edge: EdgeFilter {
                    src: Some(1),
                    dst: Some(0),
                    ..Default::default()
                },
                action: FaultAction::Drop { p: 0.05 },
            }
        );
        assert_eq!(plan.rules[1].edge.tag, Some(7));
        assert_eq!(
            plan.stalls,
            vec![StallRule {
                rank: 2,
                at: 0.01,
                secs: 0.5
            }]
        );
        assert_eq!(plan.links.len(), 1);
        assert_eq!(plan.links[0].factor, 8.0);
        assert_eq!(plan.links[0].edge.ctx, Some(3));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop",                  // no colon
            "drop:p",                // not key=value
            "drop:src=1",            // missing p
            "delay:p=0.5",           // missing secs
            "stall:rank=1,secs=1.0", // missing at
            "degrade:p=0.5",         // missing factor
            "warp:p=0.5",            // unknown kind
            "drop:p=0.5,zap=1",      // unknown key
            "drop:p=abc",            // bad number
        ] {
            assert!(
                FaultPlan::parse(bad, 0).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn stalls_for_sorts_by_time() {
        let plan = FaultPlan {
            stalls: vec![
                StallRule {
                    rank: 1,
                    at: 5.0,
                    secs: 1.0,
                },
                StallRule {
                    rank: 1,
                    at: 2.0,
                    secs: 1.0,
                },
                StallRule {
                    rank: 0,
                    at: 0.0,
                    secs: 1.0,
                },
            ],
            ..Default::default()
        };
        let s = plan.stalls_for(1);
        assert_eq!(s.len(), 2);
        assert!(s[0].at < s[1].at);
    }

    #[test]
    fn board_attributes_primary_over_cascades() {
        let board = FailureBoard::new();
        board.record(RankFailure {
            rank: 0,
            phase: "fact".into(),
            kind: FailKind::PeerDown { peer: 2 },
            seq: 0,
        });
        board.record(RankFailure {
            rank: 2,
            phase: "fact".into(),
            kind: FailKind::Panic {
                message: "original boom".into(),
            },
            seq: 0,
        });
        assert!(board.has_failure());
        assert_eq!(board.primary_rank(), Some(2), "cascade must not win");
        let mf = MachineFailure {
            failures: board.into_failures(),
        };
        assert_eq!(mf.primary().rank, 2);
        let r = mf.render();
        assert!(
            r.starts_with("simulated rank 2 panicked: original boom"),
            "{r}"
        );
        assert!(r.contains("[cascade] rank 0"), "{r}");
    }
}
