//! Process-grid topologies: the 2D grids of SuperLU_DIST and the 3D grid of
//! the paper's algorithm.
//!
//! Conventions (matching the paper's notation):
//! - a 2D grid has `pr x pc` processes; block `(I, J)` of the matrix is
//!   owned by process `(I mod pr, J mod pc)` (block-cyclic layout, §II-E);
//! - a 3D grid is `Pz` stacked 2D grids; world rank
//!   `= z * (pr * pc) + r * pc + c`.

use crate::comm::Comm;
use crate::rank::Rank;

/// A 2D process grid of shape `pr x pc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid2d {
    pub pr: usize,
    pub pc: usize,
}

impl Grid2d {
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        Grid2d { pr, pc }
    }

    /// Total process count.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Local rank of grid coordinate `(r, c)`.
    #[inline]
    pub fn rank_of(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.pr && c < self.pc);
        r * self.pc + c
    }

    /// Grid coordinate of local rank `rank`.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// Owner coordinates of block `(i, j)` under the block-cyclic layout.
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> (usize, usize) {
        (i % self.pr, j % self.pc)
    }
}

/// A 3D process grid: `pz` stacked `pr x pc` grids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid3d {
    pub grid2d: Grid2d,
    pub pz: usize,
}

impl Grid3d {
    /// `pz` must be a power of two (Algorithm 1 halves the active grid set
    /// each level).
    pub fn new(pr: usize, pc: usize, pz: usize) -> Self {
        assert!(pz > 0 && pz.is_power_of_two(), "Pz must be a power of two");
        Grid3d {
            grid2d: Grid2d::new(pr, pc),
            pz,
        }
    }

    /// Total process count `pr * pc * pz`.
    pub fn size(&self) -> usize {
        self.grid2d.size() * self.pz
    }

    /// Processes per 2D layer.
    pub fn layer_size(&self) -> usize {
        self.grid2d.size()
    }

    /// World rank of `(r, c, z)`.
    #[inline]
    pub fn rank_of(&self, r: usize, c: usize, z: usize) -> usize {
        z * self.layer_size() + self.grid2d.rank_of(r, c)
    }

    /// `(r, c, z)` coordinates of a world rank.
    #[inline]
    pub fn coords_of(&self, world: usize) -> (usize, usize, usize) {
        let z = world / self.layer_size();
        let (r, c) = self.grid2d.coords_of(world % self.layer_size());
        (r, c, z)
    }

    /// Number of levels in Algorithm 1's reduction ladder: `log2 pz`.
    pub fn levels(&self) -> usize {
        self.pz.trailing_zeros() as usize
    }
}

/// The communicators a rank needs to run the 3D algorithm, built once at
/// startup (collectively, in a deterministic order).
pub struct GridComms {
    /// This rank's 3D coordinates `(r, c, z)`.
    pub coords: (usize, usize, usize),
    /// All ranks in my 2D layer (my `z`), ordered row-major.
    pub layer: Comm,
    /// My process row within my layer (fixed `r`, varying `c`).
    pub row: Comm,
    /// My process column within my layer (fixed `c`, varying `r`).
    pub col: Comm,
    /// The z-line through my `(r, c)` position: one rank per layer. This is
    /// the path of the ancestor-reduction step.
    pub zline: Comm,
}

/// Collectively build the per-rank communicator set for a 3D grid. Every
/// rank must call this exactly once, immediately, before any other
/// communicator creation (SPMD discipline).
pub fn build_grid_comms(rank: &mut Rank, g: &Grid3d) -> GridComms {
    assert_eq!(rank.size(), g.size(), "machine size != grid size");
    rank.register_grid(*g);
    let (my_r, my_c, my_z) = g.coords_of(rank.id());
    let g2 = g.grid2d;

    let mut layer = None;
    for z in 0..g.pz {
        let members: Vec<usize> = (0..g2.size()).map(|l| z * g2.size() + l).collect();
        if let Some(c) = rank.subset(&members) {
            layer = Some(c);
        }
    }
    let mut row = None;
    for z in 0..g.pz {
        for r in 0..g2.pr {
            let members: Vec<usize> = (0..g2.pc).map(|c| g.rank_of(r, c, z)).collect();
            if let Some(c) = rank.subset(&members) {
                row = Some(c);
            }
        }
    }
    let mut col = None;
    for z in 0..g.pz {
        for c in 0..g2.pc {
            let members: Vec<usize> = (0..g2.pr).map(|r| g.rank_of(r, c, z)).collect();
            if let Some(cc) = rank.subset(&members) {
                col = Some(cc);
            }
        }
    }
    let mut zline = None;
    for r in 0..g2.pr {
        for c in 0..g2.pc {
            let members: Vec<usize> = (0..g.pz).map(|z| g.rank_of(r, c, z)).collect();
            if let Some(cc) = rank.subset(&members) {
                zline = Some(cc);
            }
        }
    }
    GridComms {
        coords: (my_r, my_c, my_z),
        layer: layer.expect("every rank is in exactly one layer"),
        row: row.expect("every rank is in exactly one row"),
        col: col.expect("every rank is in exactly one column"),
        zline: zline.expect("every rank is in exactly one z-line"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::payload::Payload;
    use crate::timemodel::TimeModel;

    #[test]
    fn grid2d_rank_coords_roundtrip() {
        let g = Grid2d::new(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(g.coords_of(g.rank_of(r, c)), (r, c));
            }
        }
        assert_eq!(g.owner(7, 9), (7 % 3, 9 % 4));
    }

    #[test]
    fn grid3d_rank_coords_roundtrip() {
        let g = Grid3d::new(2, 3, 4);
        assert_eq!(g.size(), 24);
        assert_eq!(g.levels(), 2);
        for z in 0..4 {
            for r in 0..2 {
                for c in 0..3 {
                    assert_eq!(g.coords_of(g.rank_of(r, c, z)), (r, c, z));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn grid3d_rejects_non_power_of_two_pz() {
        let _ = Grid3d::new(2, 2, 3);
    }

    #[test]
    fn comms_route_correctly() {
        let g = Grid3d::new(2, 2, 2);
        let m = Machine::new(g.size(), TimeModel::zero());
        let out = m.run(move |rank| {
            let comms = build_grid_comms(rank, &g);
            let (r, c, z) = comms.coords;
            // Row-allreduce of column ids, col-allreduce of row ids, and a
            // z-line exchange.
            let row_sum = rank.allreduce_sum(&comms.row, vec![c as f64], 1)[0];
            let col_sum = rank.allreduce_sum(&comms.col, vec![r as f64], 2)[0];
            let peer = 1 - comms.zline.local_rank();
            rank.send(&comms.zline, peer, 3, Payload::Idx(vec![z]));
            let peer_z = rank.recv(&comms.zline, peer, 3).into_idx()[0];
            (row_sum, col_sum, peer_z)
        });
        for (world, &(rs, cs, pz)) in out.results.iter().enumerate() {
            let (_, _, z) = g.coords_of(world);
            assert_eq!(rs, 1.0); // 0 + 1 over the row
            assert_eq!(cs, 1.0);
            assert_eq!(pz, 1 - z);
        }
    }
}
