//! Collective operations built on point-to-point messages.
//!
//! Implemented with the classical tree algorithms so the simulated message
//! counts and critical-path latency match what an MPI library would incur:
//!
//! - broadcast / reduce: binomial trees, `ceil(log2 p)` rounds,
//! - barrier: dissemination algorithm, `ceil(log2 p)` rounds,
//! - allreduce: reduce-to-root followed by broadcast.
//!
//! Tags are namespaced under high bits so collective traffic can never
//! collide with user point-to-point tags on the same communicator.

use crate::comm::Comm;
use crate::payload::Payload;
use crate::rank::Rank;
use obs::SpanCat;

/// High-bit namespace for collective-internal tags.
const COLL_TAG: u64 = 1 << 62;

impl Rank {
    /// Broadcast from `root` (local rank) to every member of `comm`.
    /// `data` must be `Some` on the root and is ignored elsewhere. Every
    /// rank returns the broadcast payload. Binomial tree: `p - 1` messages
    /// total, `ceil(log2 p)` on the critical path.
    pub fn bcast(&mut self, comm: &Comm, root: usize, data: Option<Payload>, tag: u64) -> Payload {
        let sp = self.span_enter(SpanCat::Coll, "bcast");
        let out = self.bcast_inner(comm, root, data, tag);
        self.span_exit(sp);
        out
    }

    fn bcast_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Option<Payload>,
        tag: u64,
    ) -> Payload {
        let p = comm.size();
        assert!(root < p, "bcast root out of range");
        let tag = COLL_TAG | tag;
        // Rotate so the root is relative rank 0.
        let relative = (comm.local_rank() + p - root) % p;

        // Receive from parent (clear the lowest set bit), unless root.
        let mut mask = 1usize;
        let payload;
        if relative == 0 {
            payload = data.expect("bcast root must supply data");
            while mask < p {
                mask <<= 1;
            }
        } else {
            loop {
                if relative & mask != 0 {
                    let src = ((relative - mask) + root) % p;
                    payload = self.recv(comm, src, tag);
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to children in decreasing bit order. Every bit below my
        // lowest set bit addresses a distinct child subtree.
        let mut bit = mask >> 1;
        while bit > 0 {
            if relative + bit < p {
                let dst = ((relative + bit) + root) % p;
                self.send(comm, dst, tag, payload.clone());
            }
            bit >>= 1;
        }
        payload
    }

    /// Elementwise-sum reduction of `data` to `root` (local rank). Returns
    /// `Some(sum)` on the root, `None` elsewhere. Binomial tree with a
    /// deterministic combine order, so results are bitwise reproducible for
    /// a fixed communicator size.
    pub fn reduce_sum(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<f64>> {
        let sp = self.span_enter(SpanCat::Coll, "reduce");
        let out = self.reduce_sum_inner(comm, root, data, tag);
        self.span_exit(sp);
        out
    }

    fn reduce_sum_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<f64>> {
        let p = comm.size();
        assert!(root < p, "reduce root out of range");
        let tag = COLL_TAG | tag;
        let relative = (comm.local_rank() + p - root) % p;
        let mut acc = data;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let child = relative | mask;
                if child < p {
                    let src = (child + root) % p;
                    let v = self.recv(comm, src, tag).into_f64s();
                    assert_eq!(v.len(), acc.len(), "reduce_sum operand length mismatch");
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a += b;
                    }
                }
            } else {
                let parent = relative & !mask;
                let dst = (parent + root) % p;
                self.send(comm, dst, tag, Payload::F64s(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce (sum): reduce to local rank 0, then broadcast.
    pub fn allreduce_sum(&mut self, comm: &Comm, data: Vec<f64>, tag: u64) -> Vec<f64> {
        let sp = self.span_enter(SpanCat::Coll, "allreduce");
        let reduced = self.reduce_sum_inner(comm, 0, data, tag);
        let out = self
            .bcast_inner(comm, 0, reduced.map(Payload::F64s), tag ^ 0x5555)
            .into_f64s();
        self.span_exit(sp);
        out
    }

    /// Maximum-allreduce of a single value (used for load statistics and
    /// convergence checks).
    pub fn allreduce_max(&mut self, comm: &Comm, value: f64, tag: u64) -> f64 {
        let sp = self.span_enter(SpanCat::Coll, "allreduce_max");
        let out = self.allreduce_max_inner(comm, value, tag);
        self.span_exit(sp);
        out
    }

    fn allreduce_max_inner(&mut self, comm: &Comm, value: f64, tag: u64) -> f64 {
        let p = comm.size();
        let rtag = COLL_TAG | tag | (1 << 61);
        let relative = comm.local_rank();
        let mut acc = value;
        let mut mask = 1usize;
        let mut is_root = true;
        while mask < p {
            if relative & mask == 0 {
                let child = relative | mask;
                if child < p {
                    let v = self.recv(comm, child, rtag).into_f64s();
                    acc = acc.max(v[0]);
                }
            } else {
                let parent = relative & !mask;
                self.send(comm, parent, rtag, Payload::F64s(vec![acc]));
                is_root = false;
                break;
            }
            mask <<= 1;
        }
        let out = if is_root {
            Some(Payload::F64s(vec![acc]))
        } else {
            None
        };
        self.bcast_inner(comm, 0, out, tag ^ 0x3333).into_f64s()[0]
    }

    /// Dissemination barrier: `ceil(log2 p)` rounds of paired empty
    /// messages. Synchronizes simulated clocks (up to the model's transfer
    /// charges) — this is where load imbalance becomes visible
    /// synchronization time.
    pub fn barrier(&mut self, comm: &Comm, tag: u64) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let sp = self.span_enter(SpanCat::Coll, "barrier");
        self.barrier_inner(comm, tag);
        self.span_exit(sp);
    }

    fn barrier_inner(&mut self, comm: &Comm, tag: u64) {
        let p = comm.size();
        let tag = COLL_TAG | tag | (1 << 60);
        let me = comm.local_rank();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < p {
            let dst = (me + dist) % p;
            let src = (me + p - dist) % p;
            self.send(comm, dst, tag + round, Payload::Empty);
            let _ = self.recv(comm, src, tag + round);
            dist <<= 1;
            round += 1;
        }
    }

    /// Gather variable-length f64 payloads to `root`; returns `Some(vec of
    /// per-local-rank data)` on the root. Linear algorithm (`p - 1` messages
    /// to the root); used for result collection, never inside the
    /// factorization inner loops.
    pub fn gather_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<Vec<f64>>> {
        let sp = self.span_enter(SpanCat::Coll, "gather");
        let out = self.gather_f64_inner(comm, root, data, tag);
        self.span_exit(sp);
        out
    }

    fn gather_f64_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<Vec<f64>>> {
        let p = comm.size();
        let tag = COLL_TAG | tag | (1 << 59);
        let me = comm.local_rank();
        if me == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
            out[root] = data;
            for src in 0..p {
                if src != root {
                    out[src] = self.recv(comm, src, tag).into_f64s();
                }
            }
            Some(out)
        } else {
            self.send(comm, root, tag, Payload::F64s(data));
            None
        }
    }
}
