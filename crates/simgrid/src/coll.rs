//! Collective operations built on point-to-point messages.
//!
//! Implemented with the classical tree algorithms so the simulated message
//! counts and critical-path latency match what an MPI library would incur:
//!
//! - broadcast / reduce: binomial trees, `ceil(log2 p)` rounds,
//! - barrier: dissemination algorithm, `ceil(log2 p)` rounds,
//! - allreduce: reduce-to-root followed by broadcast.
//!
//! Tags are namespaced under high bits so collective traffic can never
//! collide with user point-to-point tags on the same communicator, and
//! every collective *phase* (the reduce half of an allreduce, the
//! broadcast half, a barrier round, ...) owns a disjoint sub-namespace so
//! two adjacent collectives with nearby base tags can never alias either.
//! The layout of a collective-internal tag:
//!
//! ```text
//! bit 62        : COLL_TAG     — separates collective from user traffic
//! bits 57..=59  : phase id     — which collective phase (PH_*)
//! bits 53..=56  : round        — per-round counter (dissemination barrier)
//! bits 0..=52   : caller's tag — must stay below 2^53 (asserted)
//! ```
//!
//! Earlier revisions derived sub-tags arithmetically (`tag + round` for
//! barrier rounds, `tag ^ 0x5555` / `tag ^ 0x3333` for the broadcast half
//! of allreduces), which collides when a sibling collective's base tag
//! differs by the same small integer — e.g. two adjacent barriers with
//! consecutive base tags, or an allreduce whose XORed broadcast tag lands
//! on another collective's reduce tag. Dedicated bit fields make the
//! sub-namespaces disjoint by construction; `coll_tags::namespaces_are_
//! disjoint` pins the property. The layout constants and the workspace-wide
//! registry of declared tag bases live in [`crate::tags`], whose `audit()`
//! the static communication planner re-runs at plan time.

use crate::comm::Comm;
use crate::payload::Payload;
use crate::rank::Rank;
use crate::tags::{
    coll_tag, MAX_ROUNDS, PH_ALLREDUCE_BCAST, PH_BARRIER, PH_BCAST, PH_GATHER, PH_MAX_BCAST,
    PH_MAX_REDUCE, PH_REDUCE, ROUND_SHIFT,
};
use obs::SpanCat;

impl Rank {
    /// Broadcast from `root` (local rank) to every member of `comm`.
    /// `data` must be `Some` on the root and is ignored elsewhere. Every
    /// rank returns the broadcast payload. Binomial tree: `p - 1` messages
    /// total, `ceil(log2 p)` on the critical path.
    pub fn bcast(&mut self, comm: &Comm, root: usize, data: Option<Payload>, tag: u64) -> Payload {
        let sp = self.span_enter(SpanCat::Coll, "bcast");
        let out = self.bcast_inner(comm, root, data, coll_tag(PH_BCAST, tag));
        self.span_exit(sp);
        out
    }

    /// `tag` is a fully namespaced collective tag (see [`coll_tag`]); the
    /// phase id is the caller's responsibility so allreduce variants can
    /// keep their broadcast half disjoint from direct broadcasts.
    fn bcast_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Option<Payload>,
        tag: u64,
    ) -> Payload {
        let p = comm.size();
        assert!(root < p, "bcast root out of range");
        // Rotate so the root is relative rank 0.
        let relative = (comm.local_rank() + p - root) % p;

        // Receive from parent (clear the lowest set bit), unless root.
        let mut mask = 1usize;
        let payload;
        if relative == 0 {
            payload = data.expect("bcast root must supply data");
            while mask < p {
                mask <<= 1;
            }
        } else {
            loop {
                if relative & mask != 0 {
                    let src = ((relative - mask) + root) % p;
                    payload = self.recv(comm, src, tag);
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to children in decreasing bit order. Every bit below my
        // lowest set bit addresses a distinct child subtree.
        let mut bit = mask >> 1;
        while bit > 0 {
            if relative + bit < p {
                let dst = ((relative + bit) + root) % p;
                self.send(comm, dst, tag, payload.clone());
            }
            bit >>= 1;
        }
        payload
    }

    /// Elementwise-sum reduction of `data` to `root` (local rank). Returns
    /// `Some(sum)` on the root, `None` elsewhere. Binomial tree with a
    /// deterministic combine order, so results are bitwise reproducible for
    /// a fixed communicator size.
    pub fn reduce_sum(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<f64>> {
        let sp = self.span_enter(SpanCat::Coll, "reduce");
        let out = self.reduce_sum_inner(comm, root, data, coll_tag(PH_REDUCE, tag));
        self.span_exit(sp);
        out
    }

    /// `tag` is a fully namespaced collective tag (see [`bcast_inner`]).
    fn reduce_sum_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<f64>> {
        let p = comm.size();
        assert!(root < p, "reduce root out of range");
        let relative = (comm.local_rank() + p - root) % p;
        let mut acc = data;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let child = relative | mask;
                if child < p {
                    let src = (child + root) % p;
                    let v = self.recv_f64s(comm, src, tag);
                    assert_eq!(v.len(), acc.len(), "reduce_sum operand length mismatch");
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a += b;
                    }
                }
            } else {
                let parent = relative & !mask;
                let dst = (parent + root) % p;
                self.send(comm, dst, tag, Payload::F64s(acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce (sum): reduce to local rank 0, then broadcast.
    pub fn allreduce_sum(&mut self, comm: &Comm, data: Vec<f64>, tag: u64) -> Vec<f64> {
        let sp = self.span_enter(SpanCat::Coll, "allreduce");
        let reduced = self.reduce_sum_inner(comm, 0, data, coll_tag(PH_REDUCE, tag));
        let out = self
            .bcast_inner(
                comm,
                0,
                reduced.map(Payload::F64s),
                coll_tag(PH_ALLREDUCE_BCAST, tag),
            )
            .into_f64s();
        self.span_exit(sp);
        out
    }

    /// Maximum-allreduce of a single value (used for load statistics and
    /// convergence checks).
    pub fn allreduce_max(&mut self, comm: &Comm, value: f64, tag: u64) -> f64 {
        let sp = self.span_enter(SpanCat::Coll, "allreduce_max");
        let out = self.allreduce_max_inner(comm, value, tag);
        self.span_exit(sp);
        out
    }

    fn allreduce_max_inner(&mut self, comm: &Comm, value: f64, tag: u64) -> f64 {
        let p = comm.size();
        let rtag = coll_tag(PH_MAX_REDUCE, tag);
        let relative = comm.local_rank();
        let mut acc = value;
        let mut mask = 1usize;
        let mut is_root = true;
        while mask < p {
            if relative & mask == 0 {
                let child = relative | mask;
                if child < p {
                    let v = self.recv_f64s(comm, child, rtag);
                    acc = acc.max(v[0]);
                }
            } else {
                let parent = relative & !mask;
                self.send(comm, parent, rtag, Payload::F64s(vec![acc]));
                is_root = false;
                break;
            }
            mask <<= 1;
        }
        let out = if is_root {
            Some(Payload::F64s(vec![acc]))
        } else {
            None
        };
        self.bcast_inner(comm, 0, out, coll_tag(PH_MAX_BCAST, tag))
            .into_f64s()[0]
    }

    /// Dissemination barrier: `ceil(log2 p)` rounds of paired empty
    /// messages. Synchronizes simulated clocks (up to the model's transfer
    /// charges) — this is where load imbalance becomes visible
    /// synchronization time.
    pub fn barrier(&mut self, comm: &Comm, tag: u64) {
        let p = comm.size();
        if p <= 1 {
            return;
        }
        let sp = self.span_enter(SpanCat::Coll, "barrier");
        self.barrier_inner(comm, tag);
        self.span_exit(sp);
    }

    fn barrier_inner(&mut self, comm: &Comm, tag: u64) {
        let p = comm.size();
        let base = coll_tag(PH_BARRIER, tag);
        let me = comm.local_rank();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < p {
            // The round counter lives in its own bit field, so round `r` of
            // one barrier can never alias round 0 of a sibling barrier
            // whose base tag happens to be `tag + r`.
            assert!(round < MAX_ROUNDS, "barrier round counter overflow");
            let rtag = base | (round << ROUND_SHIFT);
            let dst = (me + dist) % p;
            let src = (me + p - dist) % p;
            self.send(comm, dst, rtag, Payload::Empty);
            let _ = self.recv(comm, src, rtag);
            dist <<= 1;
            round += 1;
        }
    }

    /// Gather variable-length f64 payloads to `root`; returns `Some(vec of
    /// per-local-rank data)` on the root. Linear algorithm (`p - 1` messages
    /// to the root); used for result collection, never inside the
    /// factorization inner loops.
    pub fn gather_f64(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<Vec<f64>>> {
        let sp = self.span_enter(SpanCat::Coll, "gather");
        let out = self.gather_f64_inner(comm, root, data, tag);
        self.span_exit(sp);
        out
    }

    fn gather_f64_inner(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Vec<f64>,
        tag: u64,
    ) -> Option<Vec<Vec<f64>>> {
        let p = comm.size();
        let tag = coll_tag(PH_GATHER, tag);
        let me = comm.local_rank();
        if me == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
            out[root] = data;
            for src in 0..p {
                if src != root {
                    out[src] = self.recv_f64s(comm, src, tag);
                }
            }
            Some(out)
        } else {
            self.send(comm, root, tag, Payload::F64s(data));
            None
        }
    }
}

#[cfg(test)]
mod coll_tags {
    use super::*;
    use crate::tags::COLL_TAG;

    const PHASES: &[(u64, &str)] = &[
        (PH_BCAST, "bcast"),
        (PH_REDUCE, "reduce"),
        (PH_ALLREDUCE_BCAST, "allreduce-bcast"),
        (PH_MAX_REDUCE, "max-reduce"),
        (PH_MAX_BCAST, "max-bcast"),
        (PH_BARRIER, "barrier"),
        (PH_GATHER, "gather"),
    ];

    #[test]
    fn namespaces_are_disjoint() {
        // Phase ids are pairwise distinct, nonzero, clear of the round
        // field, clear of the caller-tag field, and below the COLL bit.
        let round_mask = (MAX_ROUNDS - 1) << ROUND_SHIFT;
        let user_mask = (1u64 << ROUND_SHIFT) - 1;
        for (i, &(pa, na)) in PHASES.iter().enumerate() {
            assert_ne!(pa, 0, "{na}");
            assert_eq!(pa & round_mask, 0, "{na} overlaps the round field");
            assert_eq!(pa & user_mask, 0, "{na} overlaps the caller-tag field");
            assert!(pa < COLL_TAG, "{na} overlaps the COLL namespace bit");
            for &(pb, nb) in &PHASES[i + 1..] {
                assert_ne!(pa, pb, "{na} vs {nb}");
            }
        }
        // The round field itself stays clear of the caller-tag bits.
        assert_eq!(round_mask & user_mask, 0);
    }

    #[test]
    fn sibling_collectives_with_nearby_tags_never_alias() {
        // The regressions that motivated the bit fields: a barrier's round
        // `r` tag versus a sibling barrier whose base tag differs by `r`
        // (formerly `tag + round`), and an allreduce's broadcast tag versus
        // another collective's reduce tag (formerly `tag ^ 0x5555`, which
        // maps e.g. 0x5554 onto 0x5554 + 1).
        for base in [0u64, 7, 0x5554, 0x5554 & !1, (12 << 48) | 3] {
            for delta in 1u64..8 {
                for ra in 0..MAX_ROUNDS {
                    for rb in 0..MAX_ROUNDS {
                        let a = coll_tag(PH_BARRIER, base) | (ra << ROUND_SHIFT);
                        let b = coll_tag(PH_BARRIER, base + delta) | (rb << ROUND_SHIFT);
                        assert_ne!(a, b, "barrier({base:#x}) r{ra} vs barrier+{delta} r{rb}");
                    }
                }
            }
            // An allreduce's two halves and a plain reduce/bcast with ANY
            // base tag below the namespace can only collide phase-by-phase,
            // so equal tags imply equal base tags within the same phase.
            let ar_bcast = coll_tag(PH_ALLREDUCE_BCAST, base);
            for other in [base, base ^ 0x5555, base ^ 0x3333, base + 1] {
                assert_ne!(ar_bcast, coll_tag(PH_REDUCE, other));
                assert_ne!(ar_bcast, coll_tag(PH_BCAST, other));
                assert_ne!(coll_tag(PH_MAX_BCAST, base), coll_tag(PH_REDUCE, other));
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows into the round/phase namespace")]
    fn oversized_caller_tag_is_rejected() {
        let _ = coll_tag(PH_BCAST, 1 << ROUND_SHIFT);
    }
}
