//! Per-rank traffic and time accounting.

use obs::{CommReport, HostReport, MemReport, MetricsRegistry, RankObs};
use std::collections::BTreeMap;

/// Message/word counters for one traffic phase on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounter {
    pub sent_msgs: u64,
    pub sent_words: u64,
    pub recv_msgs: u64,
    pub recv_words: u64,
}

impl PhaseCounter {
    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &PhaseCounter) {
        self.sent_msgs += other.sent_msgs;
        self.sent_words += other.sent_words;
        self.recv_msgs += other.recv_msgs;
        self.recv_words += other.recv_words;
    }
}

/// Everything one rank reports at the end of a run.
#[derive(Clone, Debug, Default)]
pub struct RankReport {
    /// Traffic counters keyed by the phase label active when the message was
    /// sent/received (see [`crate::Rank::set_phase`]). The paper's Fig. 10
    /// is the `"fact"` vs `"reduce"` split of `sent_words`.
    pub traffic: BTreeMap<String, PhaseCounter>,
    /// Final simulated clock (seconds): this rank's critical-path time.
    pub clock: f64,
    /// Simulated seconds spent in communication (transfer charges plus
    /// blocking waits) — the `T_comm` component of Fig. 9.
    pub t_comm: f64,
    /// Simulated seconds spent computing — the `T_scu` component of Fig. 9.
    pub t_comp: f64,
    /// Total flops this rank charged via `advance_compute`.
    pub flops: u64,
    /// Peak memory in bytes: the ledger high-water mark, folded with any
    /// legacy `record_memory` snapshots.
    pub peak_mem_bytes: u64,
    /// Wall-clock seconds this rank's thread actually ran.
    pub wall_secs: f64,
    /// Counters, gauges, and histograms this rank recorded (always on).
    pub metrics: MetricsRegistry,
    /// Memory-ledger profile: high-water mark with class+tree-level
    /// attribution of the peak instant (always on).
    pub memprof: MemReport,
    /// Wire-volume ledger: algorithmic words sent keyed by
    /// `(phase, class, tree level, grid axis)` plus per-edge totals
    /// (always on). Fault-injected duplicates and retransmits are
    /// excluded — see `fault.resent_words` in [`RankReport::metrics`].
    pub commvol: CommReport,
    /// Host-time profile: wall-clock self time per phase summing to 100%
    /// of the thread's measured wall, with derived flop-rate/bandwidth
    /// gauges. `None` unless the machine ran with
    /// [`crate::Machine::with_host_profiling`].
    pub hostprof: Option<HostReport>,
    /// Span/activity store, when tracing was enabled on the machine.
    pub trace: Option<RankObs>,
}

impl RankReport {
    /// Total words sent across all phases.
    pub fn total_sent_words(&self) -> u64 {
        self.traffic.values().map(|c| c.sent_words).sum()
    }

    /// Total messages sent across all phases.
    pub fn total_sent_msgs(&self) -> u64 {
        self.traffic.values().map(|c| c.sent_msgs).sum()
    }

    /// Total words received across all phases.
    pub fn total_recv_words(&self) -> u64 {
        self.traffic.values().map(|c| c.recv_words).sum()
    }

    /// Words sent in one phase (0 if the phase never ran).
    pub fn sent_words_in(&self, phase: &str) -> u64 {
        self.traffic.get(phase).map_or(0, |c| c.sent_words)
    }
}

/// Cross-rank aggregation of a finished run.
#[derive(Clone, Debug, Default)]
pub struct TrafficSummary {
    /// Maximum per-rank sent words (the paper's "per-process communication
    /// volume on the critical path").
    pub max_sent_words: u64,
    /// Sum of sent words over all ranks.
    pub total_sent_words: u64,
    /// Maximum per-rank received words: the ingest-side counterpart of
    /// `max_sent_words`, which bounds a rank's unpack/apply work.
    pub max_recv_words: u64,
    /// Sum of received words over all ranks. Equals `total_sent_words`
    /// when every message was consumed — a cheap delivery invariant.
    pub total_recv_words: u64,
    /// Maximum per-rank message count.
    pub max_sent_msgs: u64,
    /// Maximum simulated clock over ranks: the run's critical-path time.
    pub makespan: f64,
    /// Maximum per-rank compute seconds.
    pub max_t_comp: f64,
    /// Maximum per-rank communication seconds.
    pub max_t_comm: f64,
    /// Maximum per-rank peak memory (bytes).
    pub max_peak_mem: u64,
    /// Total flops over all ranks.
    pub total_flops: u64,
    /// Number of directed (src, dst) edges that carried at least one
    /// message, from the wire-volume ledger.
    pub edges: u64,
    /// Heaviest directed edge in words.
    pub max_edge_words: u64,
    /// Mean words per active directed edge (0 when no edge carried data).
    pub mean_edge_words: f64,
}

impl TrafficSummary {
    /// Aggregate a slice of rank reports.
    pub fn from_reports(reports: &[RankReport]) -> Self {
        let mut s = TrafficSummary::default();
        for r in reports {
            s.max_sent_words = s.max_sent_words.max(r.total_sent_words());
            s.total_sent_words += r.total_sent_words();
            s.max_recv_words = s.max_recv_words.max(r.total_recv_words());
            s.total_recv_words += r.total_recv_words();
            s.max_sent_msgs = s.max_sent_msgs.max(r.total_sent_msgs());
            s.makespan = s.makespan.max(r.clock);
            s.max_t_comp = s.max_t_comp.max(r.t_comp);
            s.max_t_comm = s.max_t_comm.max(r.t_comm);
            s.max_peak_mem = s.max_peak_mem.max(r.peak_mem_bytes);
            s.total_flops += r.flops;
            for e in &r.commvol.sent_to {
                s.edges += 1;
                s.max_edge_words = s.max_edge_words.max(e.words);
                s.mean_edge_words += e.words as f64;
            }
        }
        if s.edges > 0 {
            s.mean_edge_words /= s.edges as f64;
        }
        s
    }

    /// Max per-rank words sent in one named phase.
    pub fn max_sent_words_in(reports: &[RankReport], phase: &str) -> u64 {
        reports
            .iter()
            .map(|r| r.sent_words_in(phase))
            .max()
            .unwrap_or(0)
    }
}

/// Merge every rank's metrics registry into one machine-wide view
/// (counters sum, gauges take the max, histograms merge).
pub fn merged_metrics(reports: &[RankReport]) -> MetricsRegistry {
    let mut all = MetricsRegistry::default();
    for r in reports {
        all.merge(&r.metrics);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals() {
        let mut r = RankReport::default();
        r.traffic.insert(
            "fact".into(),
            PhaseCounter {
                sent_msgs: 2,
                sent_words: 100,
                recv_msgs: 1,
                recv_words: 50,
            },
        );
        r.traffic.insert(
            "reduce".into(),
            PhaseCounter {
                sent_msgs: 1,
                sent_words: 10,
                recv_msgs: 0,
                recv_words: 0,
            },
        );
        assert_eq!(r.total_sent_words(), 110);
        assert_eq!(r.total_sent_msgs(), 3);
        assert_eq!(r.total_recv_words(), 50);
        assert_eq!(r.sent_words_in("fact"), 100);
        assert_eq!(r.sent_words_in("nope"), 0);
    }

    #[test]
    fn summary_aggregates_max_and_total() {
        let mut r1 = RankReport::default();
        r1.traffic.insert(
            "fact".into(),
            PhaseCounter {
                sent_msgs: 1,
                sent_words: 5,
                ..Default::default()
            },
        );
        r1.clock = 2.0;
        let mut r2 = RankReport::default();
        r2.traffic.insert(
            "fact".into(),
            PhaseCounter {
                sent_msgs: 4,
                sent_words: 9,
                ..Default::default()
            },
        );
        r2.clock = 1.0;
        let s = TrafficSummary::from_reports(&[r1, r2]);
        assert_eq!(s.max_sent_words, 9);
        assert_eq!(s.total_sent_words, 14);
        assert_eq!(s.makespan, 2.0);
    }

    #[test]
    fn summary_aggregates_recv_words() {
        let mut r1 = RankReport::default();
        r1.traffic.insert(
            "fact".into(),
            PhaseCounter {
                recv_msgs: 2,
                recv_words: 30,
                ..Default::default()
            },
        );
        r1.traffic.insert(
            "reduce".into(),
            PhaseCounter {
                recv_msgs: 1,
                recv_words: 12,
                ..Default::default()
            },
        );
        let mut r2 = RankReport::default();
        r2.traffic.insert(
            "fact".into(),
            PhaseCounter {
                recv_msgs: 1,
                recv_words: 25,
                ..Default::default()
            },
        );
        let s = TrafficSummary::from_reports(&[r1, r2]);
        assert_eq!(s.max_recv_words, 42, "r1 receives 30 + 12");
        assert_eq!(s.total_recv_words, 67);
    }

    #[test]
    fn metrics_merge_across_ranks() {
        let mut r1 = RankReport::default();
        r1.metrics.inc("msg.sent", 3);
        let mut r2 = RankReport::default();
        r2.metrics.inc("msg.sent", 4);
        r2.metrics.observe("x", 2.0);
        let all = merged_metrics(&[r1, r2]);
        assert_eq!(all.counter("msg.sent"), 7);
        assert_eq!(all.histogram("x").unwrap().count, 1);
    }
}
