//! The receive-timeout backstop (sanitizer off): the panic must name the
//! missing message *and* the whole wait-for-graph state, so even an
//! unsanitized hang is diagnosable.
//!
//! Lives in its own integration-test binary because the timeout is latched
//! from `SALU_RECV_TIMEOUT_SECS` once per process.

use simgrid::{Machine, TimeModel};
use std::panic::AssertUnwindSafe;

#[test]
fn timeout_backstop_names_wait_graph_state() {
    std::env::set_var("SALU_RECV_TIMEOUT_SECS", "1");
    let m = Machine::new(2, TimeModel::zero()); // no sanitizer: no detector
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
        m.run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            if rank.id() == 0 {
                // Rank 1 exits immediately; this can never be satisfied.
                let _ = rank.recv(&world, 1, 33);
            }
        })
    }))
    .expect_err("run must hit the timeout");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload must be a string");
    assert!(
        msg.contains("recv timeout waiting for (ctx=0, src=1, tag=33)"),
        "{msg}"
    );
    assert!(msg.contains("wait-for graph:"), "{msg}");
    assert!(msg.contains("rank 0: blocked in recv"), "{msg}");
    assert!(msg.contains("(ctx=0, src=1, tag=33, phase=fact)"), "{msg}");
    assert!(msg.contains("rank 1: finished"), "{msg}");
}
