//! The receive-timeout backstop (sanitizer off): the panic must name the
//! missing message *and* the whole wait-for-graph state, so even an
//! unsanitized hang is diagnosable.
//!
//! The timeout is per-[`Machine`] config ([`Machine::with_recv_timeout`])
//! with `SALU_RECV_TIMEOUT_SECS` as the run-time default — NOT latched
//! once per process — so one process can run machines with different
//! backstops. Still its own integration-test binary: the env-var case
//! mutates process-global state.

use simgrid::{Machine, TimeModel};
use std::panic::AssertUnwindSafe;
use std::time::Duration;

/// Run a 2-rank machine where rank 0 waits forever on rank 1 (which exits
/// immediately); return the backstop panic message.
fn hang_until_backstop(m: Machine) -> String {
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
        m.run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            if rank.id() == 0 {
                // Rank 1 exits immediately; this can never be satisfied.
                let _ = rank.recv(&world, 1, 33);
            }
        })
    }))
    .expect_err("run must hit the timeout");
    err.downcast_ref::<String>()
        .cloned()
        .expect("panic payload must be a string")
}

#[test]
fn timeout_backstop_names_wait_graph_state() {
    let m = Machine::new(2, TimeModel::zero()) // no sanitizer: no detector
        .with_recv_timeout(Duration::from_secs(1));
    let msg = hang_until_backstop(m);
    assert!(
        msg.contains("recv timeout waiting for (ctx=0, src=1, tag=33)"),
        "{msg}"
    );
    assert!(msg.contains("wait-for graph:"), "{msg}");
    assert!(msg.contains("rank 0: blocked in recv"), "{msg}");
    assert!(msg.contains("(ctx=0, src=1, tag=33, phase=fact)"), "{msg}");
    assert!(msg.contains("rank 1: finished"), "{msg}");
}

#[test]
fn env_default_is_read_per_run_and_explicit_config_wins() {
    // The env var is the default for machines without an explicit timeout…
    std::env::set_var("SALU_RECV_TIMEOUT_SECS", "1");
    let msg = hang_until_backstop(Machine::new(2, TimeModel::zero()));
    assert!(msg.contains("recv timeout"), "{msg}");
    // …and per-machine config beats it in the same process: with the env
    // var now pointing at an hour, an explicit 1s machine still trips
    // promptly. Before the fix the first run latched the env read for the
    // whole process, so neither knob could vary between runs.
    std::env::set_var("SALU_RECV_TIMEOUT_SECS", "3600");
    let m = Machine::new(2, TimeModel::zero()).with_recv_timeout(Duration::from_secs(1));
    let msg = hang_until_backstop(m);
    assert!(msg.contains("recv timeout"), "{msg}");
    std::env::remove_var("SALU_RECV_TIMEOUT_SECS");
}
