//! Seeded-defect tests for the online communication sanitizer: a planted
//! deadlock, a planted leak, and a planted wildcard race must each be
//! detected and reported with the exact ranks, phase, and (ctx, tag).

use commcheck::Finding;
use simgrid::{Machine, Payload, TimeModel};
use std::panic::AssertUnwindSafe;

/// Run `f` expecting a rank panic; return the panic message.
fn panic_message<T: std::fmt::Debug + Send + 'static>(
    m: Machine,
    f: impl Fn(&mut simgrid::Rank) -> T + Send + Sync + 'static,
) -> String {
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| m.run(f))).expect_err("run must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload must be a string")
}

#[test]
fn seeded_deadlock_is_reported_with_the_cycle() {
    // Classic A<->B cross receive: each rank waits for the other's message
    // before sending its own. The detector must name both ranks, what each
    // waits on, and the phase — long before the timeout backstop.
    let m = Machine::new(2, TimeModel::zero()).with_sanitizer();
    let msg = panic_message(m, |rank| {
        let world = rank.world();
        rank.set_phase("fact");
        let peer = 1 - rank.id();
        let tag = 40 + rank.id() as u64;
        let got = rank.recv(&world, peer, tag); // never satisfied
        rank.send(&world, peer, 41 - rank.id() as u64, Payload::Empty);
        got.words()
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("2 rank(s)"), "{msg}");
    assert!(msg.contains("rank 0 blocked in recv"), "{msg}");
    assert!(msg.contains("rank 1 blocked in recv"), "{msg}");
    // Rank 0 waits on (ctx=0, src=1, tag=40); rank 1 on (ctx=0, src=0, tag=41).
    assert!(msg.contains("(ctx=0, src=1, tag=40, phase=fact)"), "{msg}");
    assert!(msg.contains("(ctx=0, src=0, tag=41, phase=fact)"), "{msg}");
    assert!(msg.contains("waiting on rank(s) 1"), "{msg}");
    assert!(msg.contains("waiting on rank(s) 0"), "{msg}");
}

#[test]
fn deadlock_on_a_finished_rank_is_detected() {
    // Rank 1 exits without ever sending; rank 0 waits forever on it. Not a
    // cycle, but just as hopeless — the wait-for graph treats Done ranks as
    // never able to send.
    let m = Machine::new(2, TimeModel::zero()).with_sanitizer();
    let msg = panic_message(m, |rank| {
        let world = rank.world();
        rank.set_phase("reduce");
        if rank.id() == 0 {
            rank.recv(&world, 1, 9);
        }
        0u64
    });
    assert!(msg.contains("deadlock detected"), "{msg}");
    assert!(msg.contains("rank 0 blocked in recv"), "{msg}");
    assert!(msg.contains("(ctx=0, src=1, tag=9, phase=reduce)"), "{msg}");
}

#[test]
fn seeded_leak_is_reported_with_src_dst_slot() {
    // Rank 0 sends two messages; rank 1 receives only one. The unmatched
    // send must surface as a Leak with full addressing detail.
    let m = Machine::new(2, TimeModel::zero()).with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        rank.set_phase("fact");
        if rank.id() == 0 {
            rank.send(&world, 1, 7, Payload::F64s(vec![1.0, 2.0]));
            rank.send(&world, 1, 8, Payload::F64s(vec![3.0; 5])); // leaked
        } else {
            let _ = rank.recv(&world, 0, 7);
        }
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert_eq!(rep.msgs_sent, 2);
    assert_eq!(rep.msgs_received, 1);
    let leaks: Vec<_> = rep.leaks().collect();
    assert_eq!(leaks.len(), 1, "{}", rep.render());
    match leaks[0] {
        Finding::Leak {
            src,
            dst,
            ctx,
            tag,
            words,
            phase,
        } => {
            assert_eq!((*src, *dst, *ctx, *tag, *words), (0, 1, 0, 8, 5));
            assert_eq!(phase, "fact");
        }
        other => panic!("expected a leak, got {other}"),
    }
    let rendered = rep.render();
    assert!(rendered.contains("LEAK: message 0 -> 1"), "{rendered}");
}

#[test]
fn seeded_wildcard_race_is_reported_with_both_senders() {
    // Ranks 1 and 2 race their sends to rank 0's wildcard receive. A
    // side channel ("ready" messages on another tag) guarantees both racy
    // sends are outstanding before the wildcard matches, so detection is
    // deterministic even though the winner is not.
    let m = Machine::new(3, TimeModel::zero()).with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        if rank.id() == 0 {
            let _ = rank.recv(&world, 1, 99);
            let _ = rank.recv(&world, 2, 99);
            rank.set_phase("reduce");
            let (a, _) = rank.recv_any(&world, 5);
            let (b, _) = rank.recv_any(&world, 5);
            assert_ne!(a, b);
        } else {
            rank.send(&world, 0, 5, Payload::F64s(vec![rank.id() as f64]));
            rank.send(&world, 0, 99, Payload::Empty);
        }
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert_eq!(rep.wildcard_matches, 2);
    let races: Vec<_> = rep.races().collect();
    assert_eq!(races.len(), 1, "{}", rep.render());
    match races[0] {
        Finding::Race {
            receiver,
            ctx,
            tag,
            matched_src,
            rival_src,
            phase,
        } => {
            assert_eq!((*receiver, *ctx, *tag), (0, 0, 5));
            let mut pair = [*matched_src, *rival_src];
            pair.sort_unstable();
            assert_eq!(pair, [1, 2]);
            assert_eq!(phase, "reduce");
        }
        other => panic!("expected a race, got {other}"),
    }
    assert_eq!(rep.leaks().count(), 0, "{}", rep.render());
}

#[test]
fn ordered_sends_to_a_wildcard_are_not_a_race() {
    // Rank 1 sends to 0, then tells rank 2 to go; rank 2's later send is
    // therefore ordered after rank 1's under happens-before. Both may be
    // outstanding when rank 0's wildcard matches, but there is no race.
    let m = Machine::new(3, TimeModel::zero()).with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        match rank.id() {
            0 => {
                let _ = rank.recv(&world, 2, 99); // both sends now pending
                let (_, a) = rank.recv_any(&world, 5);
                let (_, b) = rank.recv_any(&world, 5);
                a.words() + b.words()
            }
            1 => {
                rank.send(&world, 0, 5, Payload::F64s(vec![1.0]));
                rank.send(&world, 2, 17, Payload::Empty); // "go"
                0
            }
            _ => {
                let _ = rank.recv(&world, 1, 17);
                rank.send(&world, 0, 5, Payload::F64s(vec![2.0]));
                rank.send(&world, 0, 99, Payload::Empty);
                0
            }
        }
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert_eq!(rep.wildcard_matches, 2);
    assert!(rep.is_clean(), "{}", rep.render());
}

#[test]
fn clean_collective_run_reports_clean() {
    // A representative mix of collectives and point-to-point under the
    // sanitizer: everything matches, nothing races, nothing leaks.
    let m = Machine::new(4, TimeModel::edison_like()).with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        rank.set_phase("fact");
        let data = if rank.id() == 0 {
            Some(Payload::F64s(vec![3.5; 8]))
        } else {
            None
        };
        let b = rank.bcast(&world, 0, data, 2).into_f64s();
        rank.set_phase("reduce");
        let s = rank.allreduce_sum(&world, vec![b[0]], 4)[0];
        rank.barrier(&world, 6);
        s
    });
    for r in &out.results {
        assert_eq!(*r, 14.0);
    }
    let rep = out.sanitizer.expect("sanitized run must report");
    assert!(rep.is_clean(), "{}", rep.render());
    assert_eq!(rep.msgs_sent, rep.msgs_received, "{}", rep.render());
    assert!(rep.msgs_sent > 0);
}

#[test]
fn unsanitized_run_has_no_report() {
    let m = Machine::new(2, TimeModel::zero());
    let out = m.run(|rank| {
        let world = rank.world();
        if rank.id() == 0 {
            rank.send(&world, 1, 1, Payload::Empty);
        } else {
            let _ = rank.recv(&world, 0, 1);
        }
    });
    assert!(out.sanitizer.is_none());
}
