//! Chaos tests for the fault-injection layer: seeded delay/dup/drop plans
//! crossed with recovery on/off and the sanitizer on/off. The contract
//! under test is the faultlab determinism guarantee — the injected
//! schedule is a pure function of the plan seed and each message's
//! protocol identity, never of thread interleaving — plus the recovery
//! guarantee that faults with retransmission change clocks, never values.

use simgrid::{
    EdgeFilter, FailKind, FaultAction, FaultPlan, FaultRule, LinkRule, Machine, Payload, RecvError,
    RetryPolicy, StallRule, TimeModel,
};

/// A plan with one rule on the given edge.
fn plan_with(seed: u64, edge: EdgeFilter, action: FaultAction) -> FaultPlan {
    FaultPlan {
        seed,
        rules: vec![FaultRule { edge, action }],
        ..Default::default()
    }
}

fn edge_0_to_1() -> EdgeFilter {
    EdgeFilter {
        src: Some(0),
        dst: Some(1),
        ..EdgeFilter::any()
    }
}

/// Ping messages 0 -> 1; rank 1 returns the received values and its final
/// clock, rank 0 its final clock. The workload every plan below perturbs.
type PerRankPayloads = Vec<Vec<Vec<f64>>>;

fn ping_run(m: Machine, nmsgs: usize) -> (PerRankPayloads, Vec<f64>, simgrid::MetricsRegistry) {
    let out = m.run(move |rank| {
        let world = rank.world();
        rank.set_phase("fact");
        let mut got = Vec::new();
        if rank.id() == 0 {
            for i in 0..nmsgs {
                rank.send(
                    &world,
                    1,
                    i as u64,
                    Payload::F64s(vec![i as f64, 2.5 * i as f64]),
                );
            }
        } else {
            for i in 0..nmsgs {
                got.push(rank.recv_f64s(&world, 0, i as u64));
            }
        }
        got
    });
    let clocks = out.reports.iter().map(|r| r.clock).collect();
    let mut metrics = simgrid::MetricsRegistry::default();
    for r in &out.reports {
        metrics.merge(&r.metrics);
    }
    (out.results, clocks, metrics)
}

#[test]
fn same_seed_same_schedule() {
    // The full chaos cocktail, run twice with the same seed: payloads,
    // simulated clocks, and every injection counter must be identical —
    // the OS scheduler has no vote.
    let chaos = || {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![
                FaultRule {
                    edge: EdgeFilter::any(),
                    action: FaultAction::Drop { p: 0.3 },
                },
                FaultRule {
                    edge: EdgeFilter::any(),
                    action: FaultAction::Dup { p: 0.2 },
                },
                FaultRule {
                    edge: EdgeFilter::any(),
                    action: FaultAction::Delay { p: 0.4, secs: 1e-3 },
                },
            ],
            stalls: vec![StallRule {
                rank: 0,
                at: 0.0,
                secs: 5e-4,
            }],
            links: vec![LinkRule {
                edge: EdgeFilter::any(),
                factor: 3.0,
            }],
        };
        let m = Machine::new(2, TimeModel::edison_like())
            .with_fault_plan(plan)
            .with_retry(RetryPolicy::default())
            .with_sanitizer();
        ping_run(m, 64)
    };
    let (vals_a, clocks_a, metrics_a) = chaos();
    let (vals_b, clocks_b, metrics_b) = chaos();
    assert_eq!(vals_a, vals_b);
    assert_eq!(clocks_a, clocks_b);
    assert_eq!(metrics_a.counters, metrics_b.counters);
    // ... and the cocktail actually injected something.
    assert!(metrics_a.counter("fault.injected.drop") > 0);
    assert!(metrics_a.counter("fault.injected.dup") > 0);
    assert!(metrics_a.counter("fault.injected.delay") > 0);
}

#[test]
fn different_seed_different_schedule() {
    let run = |seed| {
        let plan = plan_with(seed, EdgeFilter::any(), FaultAction::Drop { p: 0.5 });
        let m = Machine::new(2, TimeModel::zero())
            .with_fault_plan(plan)
            .with_retry(RetryPolicy::default());
        ping_run(m, 64).2
    };
    let a = run(1).counter("fault.injected.drop");
    let b = run(2).counter("fault.injected.drop");
    // With p=0.5 over 64 messages two seeds agreeing exactly is ~1/8
    // (birthday over the binomial); three distinct seeds all colliding is
    // negligible, so accept any one differing.
    let c = run(3).counter("fault.injected.drop");
    assert!(a != b || b != c, "seeds 1,2,3 all injected {a} drops");
}

#[test]
fn recovered_drops_deliver_the_exact_payloads() {
    // Every message on the edge is dropped at least once (p=1 re-rolls per
    // attempt, so the retry budget's last attempt gets through). Payloads
    // must come out identical to the fault-free run; the sanitizer must
    // see a perfectly balanced protocol.
    let plan = plan_with(7, edge_0_to_1(), FaultAction::Drop { p: 1.0 });
    let m = Machine::new(2, TimeModel::edison_like())
        .with_fault_plan(plan)
        .with_retry(RetryPolicy::default())
        .with_sanitizer();
    let (vals, clocks, metrics) = ping_run(m, 8);
    let clean = Machine::new(2, TimeModel::edison_like());
    let (vals_clean, clocks_clean, _) = ping_run(clean, 8);
    assert_eq!(vals, vals_clean, "recovery must not change payloads");
    // p=1.0 drops every attempt the plan is allowed to: 4 retransmissions
    // per message with the default 5-attempt budget.
    assert_eq!(metrics.counter("fault.injected.drop"), 32);
    assert_eq!(metrics.counter("fault.recovered.retransmit"), 32);
    // The retry waits are real simulated time: clocks must have shifted.
    assert!(
        clocks[1] > clocks_clean[1],
        "{clocks:?} vs {clocks_clean:?}"
    );
}

#[test]
fn unrecovered_drop_is_a_deadlock_naming_the_edge() {
    // Recovery off: the dropped message is simply lost. The receiver can
    // never match, the wait-for-graph detector (armed whenever faults are
    // on) must abort the run, and the failure must name the edge.
    let plan = plan_with(5, edge_0_to_1(), FaultAction::Drop { p: 1.0 });
    let m = Machine::new(2, TimeModel::zero())
        .with_fault_plan(plan)
        .with_sanitizer();
    let mf = m
        .try_run(|rank| {
            let world = rank.world();
            rank.set_phase("reduce");
            if rank.id() == 0 {
                rank.send(&world, 1, 33, Payload::F64s(vec![1.0]));
            } else {
                let _ = rank.recv(&world, 0, 33);
            }
        })
        .expect_err("the drop must be fatal without recovery");
    let primary = mf.primary();
    assert_eq!(primary.rank, 1);
    assert!(
        matches!(primary.kind, FailKind::Recv(RecvError::Deadlock { .. })),
        "{:?}",
        primary.kind
    );
    let rendered = mf.render();
    assert!(
        rendered.contains("simulated rank 1 panicked:"),
        "{rendered}"
    );
    assert!(rendered.contains("deadlock detected"), "{rendered}");
    assert!(
        rendered.contains("(ctx=0, src=0, tag=33, phase=reduce)"),
        "{rendered}"
    );
}

#[test]
fn unrecovered_dup_is_a_sanitizer_leak() {
    // Without recovery a duplicate is a real protocol-level extra message:
    // the receiver matches one copy, the other stays in the sanitizer's
    // outstanding table — a leak naming the edge.
    let plan = plan_with(11, edge_0_to_1(), FaultAction::Dup { p: 1.0 });
    let m = Machine::new(2, TimeModel::zero())
        .with_fault_plan(plan)
        .with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        rank.set_phase("fact");
        if rank.id() == 0 {
            rank.send(&world, 1, 4, Payload::F64s(vec![9.0]));
        } else {
            let _ = rank.recv(&world, 0, 4);
        }
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert_eq!(rep.msgs_sent, 2, "{}", rep.render());
    assert_eq!(rep.msgs_received, 1);
    let leaks: Vec<_> = rep.leaks().collect();
    assert_eq!(leaks.len(), 1, "{}", rep.render());
    assert!(
        rep.render().contains("LEAK: message 0 -> 1"),
        "{}",
        rep.render()
    );
}

#[test]
fn recovered_dup_is_filtered_before_the_protocol() {
    // With recovery on the duplicate is transport-internal: consumed at
    // the receiver's intake, invisible to the sanitizer, and the channel
    // stays clean for the next (differently tagged) message.
    let plan = plan_with(11, edge_0_to_1(), FaultAction::Dup { p: 1.0 });
    let m = Machine::new(2, TimeModel::zero())
        .with_fault_plan(plan)
        .with_retry(RetryPolicy::default())
        .with_sanitizer();
    let out = m.run(|rank| {
        let world = rank.world();
        rank.set_phase("fact");
        if rank.id() == 0 {
            rank.send(&world, 1, 4, Payload::F64s(vec![9.0]));
            rank.send(&world, 1, 5, Payload::F64s(vec![10.0]));
        } else {
            let a = rank.recv_f64s(&world, 0, 4);
            let b = rank.recv_f64s(&world, 0, 5);
            assert_eq!(a, vec![9.0]);
            assert_eq!(b, vec![10.0]);
        }
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert!(rep.is_clean(), "{}", rep.render());
    assert_eq!(
        rep.msgs_sent, 2,
        "duplicates must not register as protocol sends"
    );
    let mut metrics = simgrid::MetricsRegistry::default();
    for r in &out.reports {
        metrics.merge(&r.metrics);
    }
    assert_eq!(metrics.counter("fault.injected.dup"), 2);
    // The duplicate of tag 4 is pulled (and filtered) while draining for
    // tag 5; the duplicate of tag 5 is still in flight when the receiver
    // finishes — it dies in the channel, equally invisible to the
    // protocol, so exactly one filter event is observable here.
    assert_eq!(metrics.counter("fault.recovered.dup_filtered"), 1);
}

#[test]
fn delay_shifts_arrival_without_changing_values() {
    let plan = plan_with(3, edge_0_to_1(), FaultAction::Delay { p: 1.0, secs: 7.0 });
    let m = Machine::new(2, TimeModel::zero()).with_fault_plan(plan);
    let (vals, clocks, metrics) = ping_run(m, 1);
    assert_eq!(vals[1], vec![vec![0.0, 0.0]]);
    assert!(
        clocks[1] >= 7.0,
        "receiver clock {} must include the delay",
        clocks[1]
    );
    assert_eq!(metrics.counter("fault.injected.delay"), 1);
}

#[test]
fn stall_window_advances_the_clock() {
    let plan = FaultPlan {
        seed: 1,
        stalls: vec![StallRule {
            rank: 0,
            at: 0.0,
            secs: 9.0,
        }],
        ..Default::default()
    };
    let m = Machine::new(2, TimeModel::zero()).with_fault_plan(plan);
    let (_, clocks, metrics) = ping_run(m, 1);
    assert!(clocks[0] >= 9.0, "stalled sender clock {}", clocks[0]);
    assert!(
        clocks[1] >= 9.0,
        "the receive completes after the stalled send"
    );
    assert_eq!(metrics.counter("fault.injected.stall"), 1);
}

#[test]
fn degraded_link_slows_the_transfer() {
    let model = TimeModel::latency_bound();
    let run = |factor| {
        let plan = FaultPlan {
            seed: 1,
            links: vec![LinkRule {
                edge: edge_0_to_1(),
                factor,
            }],
            ..Default::default()
        };
        let m = Machine::new(2, model).with_fault_plan(plan);
        ping_run(m, 4).1
    };
    let slow = run(10.0);
    let fast = run(1.0);
    assert!(
        slow[1] > fast[1] * 5.0,
        "degraded link must dominate: {slow:?} vs {fast:?}"
    );
    // factor=1.0 must be bit-identical to running with no plan at all.
    let bare = ping_run(Machine::new(2, model), 4).1;
    assert_eq!(fast, bare);
}

#[test]
fn recv_deadline_trips_on_late_arrival() {
    // A 5-second injected delay against a 1-second simulated deadline:
    // the receive must fail with the structured Deadline error, not hang
    // and not report a spurious leak.
    let plan = plan_with(2, edge_0_to_1(), FaultAction::Delay { p: 1.0, secs: 5.0 });
    let m = Machine::new(2, TimeModel::zero())
        .with_fault_plan(plan)
        .with_recv_deadline(1.0);
    let mf = m
        .try_run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            if rank.id() == 0 {
                rank.send(&world, 1, 8, Payload::F64s(vec![1.0]));
            } else {
                let _ = rank.recv(&world, 0, 8);
            }
        })
        .expect_err("late arrival must trip the deadline");
    let primary = mf.primary();
    assert_eq!(primary.rank, 1);
    match &primary.kind {
        FailKind::Recv(RecvError::Deadline {
            src,
            tag,
            waited,
            deadline,
            ..
        }) => {
            assert_eq!((*src, *tag), (0, 8));
            assert!(*waited > *deadline, "waited {waited} deadline {deadline}");
        }
        other => panic!("expected Deadline, got {other:?}"),
    }
}

#[test]
fn payload_mismatch_carries_provenance() {
    let m = Machine::new(2, TimeModel::zero());
    let mf = m
        .try_run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            if rank.id() == 0 {
                rank.send(&world, 1, 21, Payload::Idx(vec![3, 4]));
            } else {
                let _ = rank.recv_f64s(&world, 0, 21); // wrong kind
            }
        })
        .expect_err("kind mismatch must fail the rank");
    let primary = mf.primary();
    assert_eq!(primary.rank, 1);
    assert_eq!(primary.phase, "fact");
    match &primary.kind {
        FailKind::PayloadMismatch { src, ctx, tag, .. } => {
            assert_eq!((*src, *ctx, *tag), (0, 0, 21));
        }
        other => panic!("expected PayloadMismatch, got {other:?}"),
    }
    // The legacy panic text is preserved for the render path.
    assert!(mf.render().contains("expected F64s"), "{}", mf.render());
}

#[test]
fn cascades_attribute_to_the_original_failure() {
    // Rank 2 dies first (payload mismatch). Ranks 0 and 1 are blocked on
    // messages rank 2 will never send — they must resolve as *cascade*
    // failures, and the machine must attribute the run to rank 2.
    let m = Machine::new(3, TimeModel::zero()).with_sanitizer();
    let mf = m
        .try_run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            match rank.id() {
                2 => {
                    // Self-inflicted: receives the wrong payload kind.
                    let w = rank.world();
                    rank.send(&w, 2, 50, Payload::Idx(vec![1]));
                    let _ = rank.recv_f64s(&w, 2, 50);
                }
                _ => {
                    let _ = rank.recv(&world, 2, 60); // never sent
                }
            }
        })
        .expect_err("rank 2's failure must sink the run");
    let primary = mf.primary();
    assert_eq!(primary.rank, 2, "{}", mf.render());
    assert!(matches!(primary.kind, FailKind::PayloadMismatch { .. }));
    let cascades: Vec<_> = mf.failures.iter().filter(|f| f.is_cascade()).collect();
    assert_eq!(cascades.len(), 2, "{}", mf.render());
    for c in cascades {
        assert!(
            matches!(&c.kind, FailKind::Recv(RecvError::PeerFailed { origin, .. }) if *origin == 2),
            "{:?}",
            c.kind
        );
    }
    let rendered = mf.render();
    assert!(
        rendered.contains("simulated rank 2 panicked:"),
        "{rendered}"
    );
    assert!(rendered.contains("[cascade] rank 0:"), "{rendered}");
    assert!(rendered.contains("[cascade] rank 1:"), "{rendered}");
}

#[test]
fn parse_grammar_round_trips_the_readme_example() {
    let plan = FaultPlan::parse(
        "drop:p=0.05,src=0,dst=1;dup:p=0.02;delay:p=0.1,secs=2e-3,tag=33;\
         stall:rank=3,at=0.5,secs=0.25;degrade:factor=4,ctx=7",
        99,
    )
    .expect("spec must parse");
    assert_eq!(plan.seed, 99);
    assert_eq!(plan.rules.len(), 3);
    assert_eq!(plan.stalls.len(), 1);
    assert_eq!(plan.links.len(), 1);
    assert_eq!(
        plan.rules[0],
        FaultRule {
            edge: EdgeFilter {
                src: Some(0),
                dst: Some(1),
                ..EdgeFilter::any()
            },
            action: FaultAction::Drop { p: 0.05 },
        }
    );
    assert!(FaultPlan::parse("drop:p=nope", 0).is_err());
    assert!(FaultPlan::parse("teleport:p=0.1", 0).is_err());
}
