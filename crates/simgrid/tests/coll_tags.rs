//! Regression tests for collective tag-namespace collisions: adjacent
//! collectives whose base tags differ by a small integer (or by the XOR
//! constants the old scheme used) must pair up correctly under the
//! sanitizer. Under the pre-fix tag derivation (`tag + round` for barrier
//! rounds, `tag ^ 0x5555` / `tag ^ 0x3333` for allreduce broadcast halves)
//! these patterns could alias a sibling collective's messages.

use simgrid::{Machine, TimeModel};

/// Two barriers back to back with consecutive base tags: round `r` of the
/// first barrier used to carry tag `base + r`, exactly the round-0 tag of
/// the second. With the round counter in its own bit field the two
/// barriers are fully disjoint; the sanitizer verifies every message
/// paired as intended and nothing leaked.
#[test]
fn adjacent_barriers_with_consecutive_tags() {
    for p in [2usize, 4, 7, 8] {
        let m = Machine::new(p, TimeModel::zero()).with_sanitizer();
        let out = m.run(|rank| {
            let world = rank.world();
            rank.set_phase("fact");
            rank.barrier(&world, 7);
            rank.barrier(&world, 8);
            rank.barrier(&world, 9);
            rank.clock()
        });
        let rep = out.sanitizer.expect("sanitized run must report");
        assert!(rep.is_clean(), "p={p}: {}", rep.render());
        assert_eq!(rep.msgs_sent, rep.msgs_received, "p={p}");
    }
}

/// An allreduce whose base tag sits one below the XOR image of its own
/// broadcast half (`0x5554 ^ 0x5555 == 1`), followed by collectives on the
/// neighbouring tags — the alias pattern of the old scheme. All results
/// must be exact and the exchange clean.
#[test]
fn adjacent_allreduces_with_xor_aliasing_tags() {
    let p = 4usize;
    let m = Machine::new(p, TimeModel::zero()).with_sanitizer();
    let out = m.run(move |rank| {
        let world = rank.world();
        rank.set_phase("fact");
        let me = rank.id() as f64;
        // Old scheme: allreduce(0x5554) broadcasts on 0x5554^0x5555 =
        // 0x5555 | COLL, the reduce tag of the very next call.
        let a = rank.allreduce_sum(&world, vec![me], 0x5554);
        let b = rank.allreduce_sum(&world, vec![me * 10.0], 0x5555);
        let c = rank.allreduce_max(&world, me, 0x3332);
        let d = rank.allreduce_max(&world, me + 100.0, 0x3333);
        (a[0], b[0], c, d)
    });
    let expect_sum: f64 = (0..p).map(|r| r as f64).sum();
    for (rid, &(a, b, c, d)) in out.results.iter().enumerate() {
        assert_eq!(a, expect_sum, "rank {rid}");
        assert_eq!(b, expect_sum * 10.0, "rank {rid}");
        assert_eq!(c, (p - 1) as f64, "rank {rid}");
        assert_eq!(d, (p - 1) as f64 + 100.0, "rank {rid}");
    }
    let rep = out.sanitizer.expect("sanitized run must report");
    assert!(rep.is_clean(), "{}", rep.render());
}

/// Mixing every collective flavour on the same communicator with clustered
/// base tags: each phase owns a disjoint sub-namespace, so the interleaving
/// pairs exactly and the clocks agree at the end.
#[test]
fn mixed_collectives_with_clustered_tags() {
    let p = 8usize;
    let m = Machine::new(p, TimeModel::zero()).with_sanitizer();
    let out = m.run(move |rank| {
        let world = rank.world();
        rank.set_phase("fact");
        let me = rank.id() as f64;
        let s = rank.allreduce_sum(&world, vec![me], 40)[0];
        rank.barrier(&world, 41);
        let mx = rank.allreduce_max(&world, me, 42);
        let red = rank.reduce_sum(&world, 0, vec![me], 43);
        let g = rank.gather_f64(&world, 0, vec![me], 44);
        rank.barrier(&world, 45);
        (s, mx, red.map(|v| v[0]), g.map(|v| v.len()))
    });
    let expect_sum: f64 = (0..p).map(|r| r as f64).sum();
    for (rid, (s, mx, red, g)) in out.results.iter().enumerate() {
        assert_eq!(*s, expect_sum, "rank {rid}");
        assert_eq!(*mx, (p - 1) as f64, "rank {rid}");
        if rid == 0 {
            assert_eq!(*red, Some(expect_sum));
            assert_eq!(*g, Some(p));
        } else {
            assert_eq!(*red, None);
            assert_eq!(*g, None);
        }
    }
    let rep = out.sanitizer.expect("sanitized run must report");
    assert!(rep.is_clean(), "{}", rep.render());
}
