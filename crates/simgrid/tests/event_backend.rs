//! The discrete-event backend at the messaging layer: identical simulated
//! behavior to the threaded backend, scheduler-state deadlock detection
//! instead of the watchdog thread, and rank counts far beyond what
//! free-running threads could sensibly run.

use simgrid::{commcheck, Backend, FailKind, Machine, Payload, TimeModel};

fn machine(n: usize, backend: Backend) -> Machine {
    Machine::new(n, TimeModel::edison_like()).with_backend(backend)
}

#[test]
fn ring_exchange_matches_threaded_bitwise() {
    let run = |backend| {
        machine(16, backend).run(|rank| {
            let world = rank.world();
            let right = (rank.id() + 1) % 16;
            let left = (rank.id() + 15) % 16;
            rank.send(
                &world,
                right,
                1,
                Payload::F64s(vec![rank.id() as f64 * 0.1]),
            );
            let got = rank.recv(&world, left, 1).into_f64s()[0];
            rank.allreduce_sum(&world, vec![got], 2)[0]
        })
    };
    let t = run(Backend::Threaded);
    let e = run(Backend::Event);
    for (a, b) in t.results.iter().zip(&e.results) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Simulated clocks and traffic are the same machine-level ledger.
    for (rt, re) in t.reports.iter().zip(&e.reports) {
        assert_eq!(rt.clock.to_bits(), re.clock.to_bits());
        assert_eq!(rt.total_sent_msgs(), re.total_sent_msgs());
    }
}

#[test]
fn collectives_and_wildcards_run_under_the_scheduler() {
    let out = machine(8, Backend::Event).run(|rank| {
        let world = rank.world();
        rank.barrier(&world, 0);
        // Deterministic wildcard: exactly one in-flight candidate.
        if rank.id() == 1 {
            rank.send(&world, 0, 7, Payload::Idx(vec![rank.id()]));
        }
        let got = if rank.id() == 0 {
            let (src, p) = rank.recv_any(&world, 7);
            assert_eq!(src, 1);
            p.into_idx()[0]
        } else {
            0
        };
        let s = rank.allreduce_sum(&world, vec![got as f64], 9)[0];
        rank.bcast(
            &world,
            3,
            (rank.id() == 3).then(|| Payload::F64s(vec![s])),
            11,
        )
        .into_f64s()[0]
    });
    for r in &out.results {
        assert_eq!(*r, 1.0);
    }
}

#[test]
fn quiescence_is_reported_as_a_deadlock_with_the_exact_cycle() {
    // Cross-receive cycle, no sanitizer, no fault plan: the threaded
    // backend would only trip the wall-clock backstop here (no detector
    // thread), but the event scheduler *proves* quiescence and publishes
    // the cycle immediately.
    let err = machine(2, Backend::Event)
        .try_run(|rank| {
            let world = rank.world();
            let peer = 1 - rank.id();
            let _ = rank.recv(&world, peer, 5);
        })
        .expect_err("cross recv must deadlock");
    let text = err.render();
    assert!(text.contains("deadlock detected"), "{text}");
    assert!(text.contains("tag=5"), "{text}");
}

#[test]
fn waits_on_a_dead_peer_resolve_as_cascades() {
    // Rank 1 panics; rank 0 blocks on it forever. The scheduler must wake
    // rank 0 and resolve the wait as a cascade of rank 1's failure, with
    // the panic as the primary cause.
    let err = machine(2, Backend::Event)
        .try_run(|rank| {
            let world = rank.world();
            if rank.id() == 1 {
                panic!("boom");
            }
            let _ = rank.recv(&world, 1, 3);
        })
        .expect_err("rank 1's panic must fail the run");
    let primary = &err.failures[0];
    assert_eq!(primary.rank, 1);
    assert!(matches!(&primary.kind, FailKind::Panic { message } if message == "boom"));
}

#[test]
fn event_backend_runs_4096_ranks() {
    // Paper-scale rank count in one process: a 4096-rank ring with a
    // final allreduce. Free-running threads would thrash; cooperative
    // tasks just take turns.
    const P: usize = 4096;
    let out = machine(P, Backend::Event).run(|rank| {
        let world = rank.world();
        let right = (rank.id() + 1) % P;
        let left = (rank.id() + P - 1) % P;
        rank.send(&world, right, 1, Payload::Idx(vec![rank.id()]));
        let got = rank.recv(&world, left, 1).into_idx()[0];
        rank.allreduce_sum(&world, vec![got as f64], 2)[0]
    });
    let expected = (P * (P - 1) / 2) as f64;
    assert!(out.results.iter().all(|&s| s == expected));
}

#[test]
fn sanitizer_rides_along_without_a_detector_thread() {
    // Race detection still works under the event backend (the SanState is
    // shared state, not a thread), and a clean run reports clean.
    let out = machine(4, Backend::Event).with_sanitizer().run(|rank| {
        let world = rank.world();
        let right = (rank.id() + 1) % 4;
        let left = (rank.id() + 3) % 4;
        rank.send(&world, right, 1, Payload::Idx(vec![rank.id()]));
        rank.recv(&world, left, 1).into_idx()[0]
    });
    let rep = out.sanitizer.expect("sanitized run must report");
    assert!(rep.is_clean(), "{}", rep.render());
    assert!(!rep
        .findings
        .iter()
        .any(|f| matches!(f, commcheck::Finding::Race { .. })));
}

#[test]
fn host_profiling_under_event_backend_fails_fast_with_config_error() {
    // PR-10 satellite: this combination used to be dropped silently — the
    // run succeeded and the hostprof report was simply absent. It must now
    // be rejected before any rank runs, with a structured config failure.
    let err = machine(2, Backend::Event)
        .with_host_profiling()
        .try_run(|_rank| ())
        .expect_err("host profiling + event backend must be rejected");
    let primary = err.primary();
    assert_eq!(primary.phase, "config");
    assert!(
        matches!(&primary.kind, FailKind::Config { detail }
            if detail.contains("threaded backend")),
        "unexpected failure kind: {}",
        primary.kind
    );
    // The same machine without host profiling runs fine.
    machine(2, Backend::Event).run(|_rank| ());
    // And the threaded combination still profiles.
    let out = machine(2, Backend::Threaded)
        .with_host_profiling()
        .run(|_rank| ());
    assert!(out.hostprof_profile().is_some());
}

#[test]
fn recv_any_from_a_non_member_is_an_orderly_failure() {
    // Communicator-context aliasing: ranks 0 and 1 build {0,1}, while rank
    // 2 (breaking `subset`'s collective contract) builds {1,2} under the
    // same context id and sends to rank 1. Rank 1's wildcard receive
    // matches on (ctx, tag) and lands on a message from a non-member —
    // which used to die via `.expect(...)` and must now surface as a
    // structured `FailKind::NonMemberMatch` with full provenance. The
    // event backend makes the interleaving deterministic: rank 1 parks
    // before rank 2 sends.
    let err = machine(3, Backend::Event)
        .try_run(|rank| {
            match rank.id() {
                0 => {
                    let _ = rank.subset(&[0, 1]);
                }
                1 => {
                    let comm = rank.subset(&[0, 1]).expect("member");
                    rank.set_phase("steal");
                    let _ = rank.recv_any(&comm, 7);
                }
                _ => {
                    let comm = rank.subset(&[1, 2]).expect("member");
                    rank.send(&comm, 0, 7, Payload::Idx(vec![42]));
                }
            };
        })
        .expect_err("non-member match must fail the run");
    let primary = err.primary();
    assert_eq!(primary.rank, 1);
    assert_eq!(primary.phase, "steal", "phase provenance must be recorded");
    match &primary.kind {
        FailKind::NonMemberMatch { src, ctx, tag } => {
            assert_eq!(*src, 2);
            assert_eq!(*ctx, 1);
            assert_eq!(*tag, 7);
        }
        other => panic!("expected NonMemberMatch, got: {other}"),
    }
    let text = err.render();
    assert!(text.contains("not a member"), "{text}");
}

#[test]
fn spurious_wakeups_are_bounded_by_delivered_messages() {
    // Rank 1 blocks on tag 99 while rank 0 bombards it with 64 messages on
    // other tags — every delivery wakes rank 1, which drains, stashes, and
    // re-parks (the spurious-wakeup path). A blocked rank is only ever
    // re-queued by a delivered send, so the wake count is bounded and the
    // run terminates; a spin-wake bug here would hang this test.
    let out = machine(2, Backend::Event).run(|rank| {
        let world = rank.world();
        if rank.id() == 0 {
            for i in 0..64u64 {
                rank.send(&world, 1, i, Payload::Idx(vec![i as usize]));
            }
            rank.send(&world, 1, 99, Payload::Idx(vec![7]));
            0
        } else {
            // The matching tag arrives last; each earlier delivery is a
            // spurious wakeup for this receive.
            let got = rank.recv(&world, 0, 99).into_idx()[0];
            // The stashed messages are all still there, in order.
            for i in 0..64u64 {
                assert_eq!(rank.recv(&world, 0, i).into_idx()[0], i as usize);
            }
            got
        }
    });
    assert_eq!(out.results[1], 7);
}

#[test]
fn rank_blocked_on_a_never_sent_tag_terminates_with_a_deadlock_report() {
    // Nobody ever sends tag 1234: once rank 0 finishes, the machine is
    // quiescent with rank 1 parked. The scheduler must prove the deadlock
    // and abort the wait — not leave rank 1 spin-waking indefinitely.
    let err = machine(2, Backend::Event)
        .try_run(|rank| {
            let world = rank.world();
            if rank.id() == 1 {
                let _ = rank.recv(&world, 0, 1234);
            }
        })
        .expect_err("a wait nobody satisfies must fail the run");
    let primary = err.primary();
    assert_eq!(primary.rank, 1);
    let text = err.render();
    assert!(text.contains("tag=1234"), "{text}");
}
