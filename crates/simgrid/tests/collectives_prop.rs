//! Property tests for the simulated machine: collectives must be correct
//! for arbitrary communicator sizes, roots, payload lengths, and machine
//! models, and the point-to-point layer must tolerate adversarial tag/
//! ordering patterns.

use proptest::prelude::*;
use simgrid::{Machine, Payload, TimeModel, TrafficSummary};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Broadcast delivers the root's exact payload to every rank, for any
    /// size/root/length, and uses exactly p-1 messages.
    #[test]
    fn bcast_correct_for_any_shape(
        p in 1usize..12,
        root_raw in 0usize..12,
        len in 0usize..200,
        alpha in 0.0f64..1e-3,
    ) {
        let root = root_raw % p;
        let model = TimeModel { alpha, beta: 1e-9, flops_per_sec: 1e9 };
        let m = Machine::new(p, model);
        let out = m.run(move |rank| {
            let world = rank.world();
            let data = (world.local_rank() == root)
                .then(|| Payload::F64s((0..len).map(|i| i as f64 * 0.5).collect()));
            rank.bcast(&world, root, data, 1).into_f64s()
        });
        for r in &out.results {
            prop_assert_eq!(r.len(), len);
            for (i, v) in r.iter().enumerate() {
                prop_assert_eq!(*v, i as f64 * 0.5);
            }
        }
        let total: u64 = out.reports.iter().map(|r| r.total_sent_msgs()).sum();
        prop_assert_eq!(total, (p - 1) as u64);
    }

    /// Reduce-sum agrees with the sequential sum for any size/root, and
    /// allreduce distributes the identical result everywhere.
    #[test]
    fn reductions_correct_for_any_shape(
        p in 1usize..12,
        root_raw in 0usize..12,
        len in 1usize..64,
    ) {
        let root = root_raw % p;
        let m = Machine::new(p, TimeModel::zero());
        let out = m.run(move |rank| {
            let world = rank.world();
            let data: Vec<f64> = (0..len).map(|i| (rank.id() * 100 + i) as f64).collect();
            let red = rank.reduce_sum(&world, root, data.clone(), 2);
            let all = rank.allreduce_sum(&world, data, 3);
            (red, all)
        });
        let expect: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| (r * 100 + i) as f64).sum())
            .collect();
        for (rid, (red, all)) in out.results.iter().enumerate() {
            prop_assert_eq!(all, &expect);
            if rid == root {
                prop_assert_eq!(red.as_ref().unwrap(), &expect);
            } else {
                prop_assert!(red.is_none());
            }
        }
    }

    /// Out-of-order receives with random tag permutations always match the
    /// right message (the pending-queue path).
    #[test]
    fn tag_matching_is_order_independent(
        ntags in 1usize..24,
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<u64> = (0..ntags as u64).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let order2 = order.clone();
        let m = Machine::new(2, TimeModel::zero());
        let out = m.run(move |rank| {
            let world = rank.world();
            if rank.id() == 0 {
                for t in 0..ntags as u64 {
                    rank.send(&world, 1, t, Payload::F64s(vec![t as f64]));
                }
                0.0
            } else {
                let mut sum = 0.0;
                for &t in &order2 {
                    let v = rank.recv(&world, 0, t).into_f64s();
                    // plain assert: a panic inside a rank fails the test
                    assert_eq!(v[0], t as f64);
                    sum += v[0];
                }
                sum
            }
        });
        let expect: f64 = (0..ntags as u64).map(|t| t as f64).sum();
        prop_assert_eq!(out.results[1], expect);
    }

    /// Simulated clocks are causally consistent: a receiver's clock is
    /// never earlier than the message's send-completion time.
    #[test]
    fn clocks_respect_causality(
        flops0 in 0u64..1_000_000,
        words in 1usize..5000,
    ) {
        let model = TimeModel::edison_like();
        let m = Machine::new(2, model);
        let out = m.run(move |rank| {
            let world = rank.world();
            if rank.id() == 0 {
                rank.advance_compute(flops0);
                rank.send(&world, 1, 0, Payload::F64s(vec![0.0; words]));
                rank.clock()
            } else {
                rank.recv(&world, 0, 0);
                rank.clock()
            }
        });
        let sender_done = out.results[0];
        let receiver_done = out.results[1];
        prop_assert!(receiver_done >= sender_done);
        let s = TrafficSummary::from_reports(&out.reports);
        prop_assert!((s.makespan - receiver_done).abs() < 1e-15);
    }
}
