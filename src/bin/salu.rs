//! `salu` — command-line front end: factor and solve a sparse system on a
//! simulated 3D process grid and report the paper's statistics.
//!
//! ```sh
//! # a generated model problem
//! salu --gen grid2d:128 --grid 2x2x4
//! salu --gen grid3d:16 --grid 2x2x2 --refine 1
//! salu --gen kkt:10 --grid 1x2x8
//!
//! # a Matrix Market file (e.g. a real SuiteSparse matrix)
//! salu --mtx path/to/matrix.mtx --grid 4x4x2 --maxsup 64
//! ```

use salu::prelude::*;
use std::process::exit;

struct Args {
    gen_spec: Option<String>,
    mtx: Option<String>,
    grid: (usize, usize, usize),
    maxsup: usize,
    leaf: usize,
    lookahead: usize,
    refine: usize,
    compare_2d: bool,
    condest: bool,
    chol: bool,
    symmetric: bool,
    report: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    mem_out: Option<String>,
    commvol_out: Option<String>,
    hostprof_out: Option<String>,
    plan_out: Option<String>,
    plan_check: bool,
    conformance: Option<String>,
    sanitize: bool,
    batched_schur: bool,
    backend: Backend,
    schedule: Schedule,
    faults: Option<String>,
    fault_seed: u64,
    no_recover: bool,
    recv_deadline: Option<f64>,
    lint_trace: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: salu (--gen KIND:SIZE | --mtx FILE) [options]\n\
         \n\
         matrix sources:\n\
         \x20 --gen grid2d:K     2D 5-point Laplacian on a K x K grid\n\
         \x20 --gen grid2d9:K    2D 9-point Laplacian\n\
         \x20 --gen grid3d:K     3D 7-point Laplacian on a K^3 grid\n\
         \x20 --gen grid3d27:K   3D 27-point Laplacian\n\
         \x20 --gen kkt:K        KKT saddle-point system on a K^3 grid\n\
         \x20 --mtx FILE         Matrix Market coordinate file\n\
         \n\
         options:\n\
         \x20 --grid RxCxZ       process grid (default 2x2x2; Z must be a power of 2)\n\
         \x20 --maxsup N         max supernode width (default 32)\n\
         \x20 --leaf N           nested-dissection leaf size (default 32)\n\
         \x20 --lookahead N      panel lookahead window (default 8)\n\
         \x20 --refine N         iterative-refinement sweeps (default 1)\n\
         \x20 --no-compare       skip the 2D-baseline comparison run\n\
         \x20 --report           print the unified single-run digest: makespan\n\
         \x20                    with critical-path attribution, peak memory by\n\
         \x20                    class, wire volume by class and grid axis, and\n\
         \x20                    the host-time phase breakdown (enables tracing\n\
         \x20                    and host profiling for this run)\n\
         \x20 --condest          estimate the 1-norm condition number (sequential)\n\
         \x20 --chol             also run the Cholesky variant (needs --sym)\n\
         \x20 --sym              generate value-symmetric matrices (for --chol)\n\
         \x20 --trace-out FILE   write a Chrome trace-event JSON of the run\n\
         \x20                    (open in ui.perfetto.dev) and print the\n\
         \x20                    critical-path attribution\n\
         \x20 --metrics-out FILE write the merged metrics registry as JSON\n\
         \x20 --mem-out FILE     write the per-rank memory profile (tagged\n\
         \x20                    allocation-ledger peaks with class and\n\
         \x20                    tree-level attribution) as JSON; '-' = stdout\n\
         \x20 --commvol-out FILE write the wire-volume report (per-class/\n\
         \x20                    per-level/per-axis sent words, per-edge\n\
         \x20                    totals, padding-waste ratios) as JSON;\n\
         \x20                    '-' = stdout (see docs/commvol.md)\n\
         \x20 --hostprof-out FILE write the host-time profile (per-rank wall\n\
         \x20                    phase breakdown, flop-rate gauges, folded\n\
         \x20                    stacks for flamegraphs) as JSON; '-' = stdout\n\
         \x20                    (see docs/hostprof.md)\n\
         \x20 --plan-out FILE    derive the static communication plan from\n\
         \x20                    symbolic analysis alone (per-rank, per-phase\n\
         \x20                    message counts and exact word volumes, keyed\n\
         \x20                    like the wire ledger), run the plan-time\n\
         \x20                    checks, and write it as JSON; '-' = stdout\n\
         \x20                    (see docs/commplan.md). Exit 1 on findings.\n\
         \x20 --plan-check       additionally run a factor-only pass and\n\
         \x20                    assert its measured wire ledger matches the\n\
         \x20                    plan EXACTLY, per (phase, class, level, axis)\n\
         \x20                    cell and per peer edge — recovered fault runs\n\
         \x20                    included. Exit 1 naming the first mismatch.\n\
         \x20 --conformance FILE check measured memory/communication against\n\
         \x20                    the Section IV cost models (runs a 2D baseline)\n\
         \x20                    and write the pass/fail report as JSON;\n\
         \x20                    '-' = stdout. Exit 1 on failure.\n\
         \x20 --sanitize         run under the communication sanitizer\n\
         \x20                    (race/deadlock/leak detection; see docs/commcheck.md)\n\
         \x20 --batched-schur    use the batched gather-GEMM-scatter Schur path\n\
         \x20                    (bitwise-identical factors; see docs/perf.md)\n\
         \x20 --backend B        execution backend: 'threaded' (default; one OS\n\
         \x20                    thread per rank) or 'event' (cooperative\n\
         \x20                    discrete-event scheduler — runs paper-scale\n\
         \x20                    grids like 64x64x1 = 4096 ranks in one\n\
         \x20                    process). Factor digests, makespans, and all\n\
         \x20                    ledgers are bitwise identical either way; host\n\
         \x20                    profiling needs 'threaded' (see docs/backends.md)\n\
         \x20 --schedule S       reduction-send schedule: 'level' (default;\n\
         \x20                    ship ancestor supernodes at each level\n\
         \x20                    boundary, as in Algorithm 1) or 'taskgraph'\n\
         \x20                    (hoist each send to its dependency-DAG\n\
         \x20                    readiness point). Factors, solutions, and\n\
         \x20                    all ledgers are bitwise identical; only\n\
         \x20                    simulated clocks differ (docs/backends.md)\n\
         \n\
         fault injection (see docs/faultlab.md):\n\
         \x20 --faults SPEC      inject deterministic faults into the simulated\n\
         \x20                    network, e.g. 'drop:p=0.05;delay:p=0.1,secs=2e-3'.\n\
         \x20                    With recovery on (the default) the run also\n\
         \x20                    factors fault-free and asserts the factors are\n\
         \x20                    bitwise identical (exit 1 if not).\n\
         \x20 --fault-seed N     seed for the fault plan's RNG (default 1)\n\
         \x20 --no-recover       disable ack/retransmit recovery: dropped\n\
         \x20                    messages stay lost and the run fails\n\
         \x20                    structurally (deadlock/leak naming the edge)\n\
         \x20 --recv-deadline S  simulated-time receive deadline in seconds;\n\
         \x20                    a later-arriving message fails the rank with\n\
         \x20                    a structured phase/supernode error\n\
         \n\
         standalone (no matrix needed):\n\
         \x20 --lint-trace FILE  offline-lint a trace written by --trace-out:\n\
         \x20                    send/recv pairing, per-(ctx,tag) FIFO order,\n\
         \x20                    collective participation. Give the flag twice\n\
         \x20                    to also check two runs for determinism.\n\
         \x20                    Exit 1 on findings."
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        gen_spec: None,
        mtx: None,
        grid: (2, 2, 2),
        maxsup: 32,
        leaf: 32,
        lookahead: 8,
        refine: 1,
        compare_2d: true,
        condest: false,
        chol: false,
        symmetric: false,
        report: false,
        trace_out: None,
        metrics_out: None,
        mem_out: None,
        commvol_out: None,
        hostprof_out: None,
        plan_out: None,
        plan_check: false,
        conformance: None,
        sanitize: false,
        batched_schur: false,
        backend: Backend::Threaded,
        schedule: Schedule::Level,
        faults: None,
        fault_seed: 1,
        no_recover: false,
        recv_deadline: None,
        lint_trace: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--gen" => args.gen_spec = Some(val("--gen")),
            "--mtx" => args.mtx = Some(val("--mtx")),
            "--grid" => {
                let v = val("--grid");
                let parts: Vec<usize> = v.split('x').filter_map(|t| t.parse().ok()).collect();
                if parts.len() != 3 {
                    eprintln!("bad --grid '{v}', expected RxCxZ");
                    usage();
                }
                args.grid = (parts[0], parts[1], parts[2]);
            }
            "--maxsup" => args.maxsup = val("--maxsup").parse().unwrap_or_else(|_| usage()),
            "--leaf" => args.leaf = val("--leaf").parse().unwrap_or_else(|_| usage()),
            "--lookahead" => {
                args.lookahead = val("--lookahead").parse().unwrap_or_else(|_| usage())
            }
            "--refine" => args.refine = val("--refine").parse().unwrap_or_else(|_| usage()),
            "--no-compare" => args.compare_2d = false,
            "--report" => args.report = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")),
            "--hostprof-out" => args.hostprof_out = Some(val("--hostprof-out")),
            "--metrics-out" => args.metrics_out = Some(val("--metrics-out")),
            "--mem-out" => args.mem_out = Some(val("--mem-out")),
            "--commvol-out" => args.commvol_out = Some(val("--commvol-out")),
            "--plan-out" => args.plan_out = Some(val("--plan-out")),
            "--plan-check" => args.plan_check = true,
            "--conformance" => args.conformance = Some(val("--conformance")),
            "--sanitize" => args.sanitize = true,
            "--batched-schur" => args.batched_schur = true,
            "--backend" => {
                let v = val("--backend");
                args.backend = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--schedule" => {
                let v = val("--schedule");
                args.schedule = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--faults" => args.faults = Some(val("--faults")),
            "--fault-seed" => {
                args.fault_seed = val("--fault-seed").parse().unwrap_or_else(|_| usage())
            }
            "--no-recover" => args.no_recover = true,
            "--recv-deadline" => {
                args.recv_deadline =
                    Some(val("--recv-deadline").parse().unwrap_or_else(|_| usage()))
            }
            "--lint-trace" => args.lint_trace.push(val("--lint-trace")),
            "--condest" => args.condest = true,
            "--chol" => args.chol = true,
            "--sym" => args.symmetric = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if args.gen_spec.is_none() && args.mtx.is_none() && args.lint_trace.is_empty() {
        usage();
    }
    let (pr, pc, pz) = args.grid;
    if pr == 0 || pc == 0 || pz == 0 || !pz.is_power_of_two() {
        eprintln!("bad --grid {pr}x{pc}x{pz}: dimensions must be positive and Z a power of two");
        usage();
    }
    args
}

fn build_matrix(args: &Args) -> (Csr, Geometry, String) {
    let unsym = if args.symmetric { 0.0 } else { 0.1 };
    if let Some(path) = &args.mtx {
        let a = salu::sparsemat::io::read_matrix_market_file(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            exit(1)
        });
        return (a, Geometry::General, path.clone());
    }
    let spec = args.gen_spec.as_ref().unwrap();
    let (kind, size) = spec.split_once(':').unwrap_or_else(|| {
        eprintln!("bad --gen '{spec}', expected KIND:SIZE");
        usage()
    });
    let k: usize = size.parse().unwrap_or_else(|_| {
        eprintln!("bad size in --gen '{spec}'");
        usage()
    });
    match kind {
        "grid2d" => (
            salu::sparsemat::matgen::grid2d_5pt(k, k, unsym, 1),
            Geometry::Grid2d { nx: k, ny: k },
            format!("2D 5-pt {k}x{k}"),
        ),
        "grid2d9" => (
            salu::sparsemat::matgen::grid2d_9pt(k, k, unsym, 1),
            Geometry::Grid2d { nx: k, ny: k },
            format!("2D 9-pt {k}x{k}"),
        ),
        "grid3d" => (
            salu::sparsemat::matgen::grid3d_7pt(k, k, k, unsym, 1),
            Geometry::Grid3d {
                nx: k,
                ny: k,
                nz: k,
            },
            format!("3D 7-pt {k}^3"),
        ),
        "grid3d27" => (
            salu::sparsemat::matgen::grid3d_27pt(k, k, k, unsym, 1),
            Geometry::Grid3d {
                nx: k,
                ny: k,
                nz: k,
            },
            format!("3D 27-pt {k}^3"),
        ),
        "kkt" => (
            salu::sparsemat::matgen::kkt_3d(k, k, k, 1e-2, 1),
            Geometry::General,
            format!("KKT on {k}^3 grid"),
        ),
        other => {
            eprintln!("unknown generator kind '{other}'");
            usage();
        }
    }
}

/// Standalone offline-lint mode: check one trace, or two for determinism.
/// Exit status 0 = clean, 1 = findings, 2 = unreadable input.
fn lint_traces(paths: &[String]) -> ! {
    let load = |path: &String| -> salu::simgrid::Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            exit(2)
        });
        salu::simgrid::Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e}");
            exit(2)
        })
    };
    let mut clean = true;
    let docs: Vec<_> = paths.iter().map(load).collect();
    for (path, doc) in paths.iter().zip(&docs) {
        match salu::simgrid::commcheck::lint_trace(doc) {
            Ok(report) => {
                println!("{path}:");
                print!("{}", report.render());
                clean &= report.is_clean();
            }
            Err(e) => {
                eprintln!("{path}: not a Chrome trace document: {e}");
                exit(2)
            }
        }
    }
    if let [a, b] = docs.as_slice() {
        match salu::simgrid::commcheck::check_determinism(a, b) {
            Ok(()) => println!("determinism: communication schedules identical"),
            Err(why) => {
                println!("determinism: {why}");
                clean = false;
            }
        }
    } else if docs.len() > 2 {
        eprintln!("--lint-trace accepts at most two files");
        exit(2)
    }
    exit(if clean { 0 } else { 1 })
}

fn main() {
    let args = parse_args();
    if !args.lint_trace.is_empty() {
        lint_traces(&args.lint_trace);
    }
    let (a, geometry, label) = build_matrix(&args);
    let planar = matches!(geometry, Geometry::Grid2d { .. });
    let (pr, pc, pz) = args.grid;
    println!("matrix : {label}  (n = {}, nnz = {})", a.nrows, a.nnz());
    println!(
        "grid   : {pr} x {pc} x {pz}  ({} simulated ranks)",
        pr * pc * pz
    );

    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 21) as f64) - 10.0).collect();
    let b = a.matvec(&x_true);

    // det-lint: allow(wall-clock): CLI progress timing only
    let t0 = std::time::Instant::now();
    let prep = Prepared::new(a, geometry, args.leaf, args.maxsup);
    println!(
        "analyze: {} supernodes, {:.2} Mwords LU, {:.1} Mflop predicted  [{:.2}s wall]",
        prep.sym.nsup(),
        prep.sym.stats().factor_words as f64 / 1e6,
        prep.sym.stats().total_flops as f64 / 1e6,
        t0.elapsed().as_secs_f64()
    );

    let fault_plan = args.faults.as_ref().map(|spec| {
        FaultPlan::parse(spec, args.fault_seed).unwrap_or_else(|e| {
            eprintln!("bad --faults '{spec}': {e}");
            exit(2)
        })
    });
    let cfg = SolverConfig {
        pr,
        pc,
        pz,
        lookahead: args.lookahead,
        refine_steps: args.refine,
        tracing: args.trace_out.is_some() || args.report,
        // Host profiling is threaded-only; the machine rejects it under
        // the event backend (a config error), so only request it there.
        host_profiling: (args.hostprof_out.is_some() || args.report)
            && args.backend == Backend::Threaded,
        sanitize: args.sanitize,
        batched_schur: args.batched_schur,
        backend: args.backend,
        schedule: args.schedule,
        fault_plan: fault_plan.clone(),
        retry: (fault_plan.is_some() && !args.no_recover).then(RetryPolicy::default),
        recv_deadline: args.recv_deadline,
        ..Default::default()
    };
    if args.backend == Backend::Event && args.hostprof_out.is_some() {
        // Host-time profiling needs real parallelism; the machine disables
        // it under the event backend, so the output file would be empty.
        eprintln!("--hostprof-out requires --backend threaded (see docs/backends.md)");
        exit(2);
    }
    if args.backend == Backend::Event && args.report {
        println!("note: --backend event skips the host-time phase breakdown (threaded-only)");
    }

    // Static communication plan: derived from symbolic analysis alone,
    // before (and independent of) any numeric execution.
    let plan = if args.plan_out.is_some() || args.plan_check {
        let forest = salu::lu3d::EtreeForest::build(&prep.tree, &prep.sym, pz);
        let grid3 = salu::simgrid::Grid3d::new(pr, pc, pz);
        let plan = salu::commplan::build_plan(&prep.sym, &forest, grid3, args.lookahead);
        let audit = salu::commplan::check_plan(&plan);
        println!(
            "\ncomm plan: {} ops, {} msgs, {} words planned; static checks {}",
            audit.ops,
            audit.msgs,
            audit.words,
            if audit.ok() { "passed" } else { "FAILED" }
        );
        if !audit.ok() {
            for f in &audit.findings {
                eprintln!("  {f}");
            }
            exit(1);
        }
        if planar {
            match salu::commplan::check_planar_volume(&plan, prep.a.nrows) {
                Ok(line) => println!("  {line}"),
                Err(line) => {
                    eprintln!("  planar volume FAILED: {line}");
                    exit(1);
                }
            }
        }
        if let Some(path) = &args.plan_out {
            emit_json(
                path,
                &salu::commplan::plan_json(&plan, &audit),
                "communication plan",
            );
        }
        Some(plan)
    } else {
        None
    };

    // det-lint: allow(wall-clock): CLI progress timing only
    let t0 = std::time::Instant::now();
    let out = try_factor_and_solve(&prep, &cfg, Some(b.clone())).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    let wall = t0.elapsed().as_secs_f64();
    let x = out.x.as_ref().expect("solution");
    let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    println!("\nfactor+solve  [{wall:.2}s wall]");
    println!(
        "  residual |Ax-b|/|b|   = {:.2e}",
        prep.a.residual_inf(x, &b) / bmax
    );
    println!("  pivot perturbations   = {}", out.perturbations);
    println!("  simulated time        = {:.4} s", out.makespan());
    println!(
        "  W_fact / W_red        = {} / {} words per rank (max)",
        out.w_fact(),
        out.w_red()
    );
    println!(
        "  peak memory per rank  = {:.2} MB (ledger high-water, max over ranks)",
        out.max_peak_bytes() as f64 / 1e6
    );
    let summary = out.summary();
    println!(
        "  wire volume           = {} words total, {} max per rank; \
         {} edges (max {} / mean {:.0} words)",
        summary.total_sent_words,
        out.max_rank_sent_words(),
        summary.edges,
        summary.max_edge_words,
        summary.mean_edge_words,
    );
    if let Some(rep) = &out.sanitizer {
        // A sanitized run with findings panics inside the solver, so
        // reaching this line means the run was clean.
        print!("{}", rep.render());
    }

    if args.report {
        print_report(&out);
    }

    if fault_plan.is_some() {
        let m = out.metrics();
        println!("\nfault injection (seed {}):", args.fault_seed);
        for (k, v) in m.counters.iter().filter(|(k, _)| k.starts_with("fault.")) {
            println!("  {k:<30} = {v}");
        }
        if !args.no_recover {
            // The recovery guarantee: faults with recovery shift clocks but
            // never values. Factor fault-free and compare digests.
            let ref_cfg = SolverConfig {
                fault_plan: None,
                retry: None,
                recv_deadline: None,
                tracing: false,
                sanitize: false,
                ..cfg.clone()
            };
            let reference = factor_only(&prep, &ref_cfg);
            if reference.factor_digest == out.factor_digest {
                println!(
                    "  recovery check: factors bitwise identical to fault-free run \
                     (digest {:#018x})",
                    out.factor_digest
                );
            } else {
                eprintln!(
                    "  recovery check FAILED: digest {:#018x} != fault-free {:#018x}",
                    out.factor_digest, reference.factor_digest
                );
                exit(1);
            }
        }
    }

    if let Some(path) = &args.trace_out {
        let doc = out.chrome_trace().expect("tracing was enabled");
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("failed to write {path}: {e}");
            exit(1);
        }
        println!("\ntrace written to {path} (open in ui.perfetto.dev)");
        if let Some(cp) = out.critical_path() {
            println!("{}", cp.render());
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, out.metrics().to_json().pretty()) {
            eprintln!("failed to write {path}: {e}");
            exit(1);
        }
        println!("metrics written to {path}");
    }
    if let Some(path) = &args.mem_out {
        emit_json(path, &out.mem_profile(), "memory profile");
    }
    if let Some(path) = &args.commvol_out {
        emit_json(path, &out.commvol_profile(), "wire-volume report");
    }
    if let Some(path) = &args.hostprof_out {
        let doc = out.hostprof_profile().expect("host profiling was enabled");
        emit_json(path, &doc, "host-time profile");
    }

    if args.plan_check {
        // The main run's ledger includes solve/refine traffic; the plan
        // covers the factorization, so measure a factor-only pass under the
        // same config — fault plan included: a recovered run must still
        // match bit-for-bit (retransmissions live in fault.* counters, not
        // the ledger).
        let plan = plan.as_ref().expect("plan built when --plan-check is set");
        let fonly = factor_only(&prep, &cfg);
        let ledgers: Vec<_> = fonly.reports.iter().map(|r| r.commvol.clone()).collect();
        match salu::commplan::compare_with_measured(plan, &ledgers) {
            Ok(stats) => println!(
                "\nplan check: measured ledger matches the plan exactly \
                 ({} ranks, {} cells, {} edges, {} msgs / {} words)",
                stats.ranks, stats.entries, stats.edges, stats.msgs, stats.words
            ),
            Err(mismatches) => {
                eprintln!("\nplan check FAILED: measured ledger deviates from the plan:");
                for m in &mismatches {
                    eprintln!("  {m}");
                }
                exit(1);
            }
        }
    }

    if args.condest {
        use salu::slu2d::store::{BlockStore, InitValues};
        use salu::slu2d::{condest_1, seq_factor};
        let grid = salu::simgrid::Grid2d::new(1, 1);
        let mut store = BlockStore::build(
            &prep.pa,
            &prep.sym,
            &grid,
            0,
            0,
            &|_| true,
            InitValues::FromMatrix,
        );
        seq_factor(&mut store, &prep.sym, 1e-10);
        println!(
            "  est. condition (1-norm)= {:.3e}",
            condest_1(&prep.pa, &store, &prep.sym)
        );
    }

    if args.chol {
        use salu::slu2d::{build_chol_store, chol_factor, chol_solve};
        // The Cholesky path needs value symmetry; verify before running.
        let sym_vals = (0..prep.pa.nrows).all(|i| {
            prep.pa
                .row_cols(i)
                .iter()
                .zip(prep.pa.row_vals(i))
                .all(|(j, v)| (prep.pa.get(*j, i) - v).abs() < 1e-14)
        });
        if !sym_vals {
            println!("\n--chol skipped: matrix values are not symmetric");
        } else {
            let mut cs = build_chol_store(&prep.pa, &prep.sym);
            match chol_factor(&mut cs, &prep.sym) {
                Ok(()) => {
                    let pb = prep.permute_rhs(&b);
                    let px = chol_solve(&cs, &prep.sym, &pb);
                    let xs = prep.unpermute_solution(&px);
                    println!(
                        "\nCholesky variant: residual = {:.2e} (storage {:.0}% of LU)",
                        prep.a.residual_inf(&xs, &b) / bmax,
                        100.0 * cs.total_words() as f64 / prep.sym.stats().factor_words as f64
                    );
                }
                Err(e) => println!(
                    "\nCholesky variant: matrix not SPD (supernode {} col {})",
                    e.supernode, e.column
                ),
            }
        }
    }

    // One 2D baseline serves both the comparison printout and the
    // conformance gate (which needs it even under --no-compare).
    let baseline = if (args.compare_2d || args.conformance.is_some()) && pz > 1 {
        let (br, bc) = bench_layer(pr * pc * pz);
        let base = factor_only(
            &prep,
            &SolverConfig {
                pr: br,
                pc: bc,
                pz: 1,
                lookahead: args.lookahead,
                ..Default::default()
            },
        );
        Some((br, bc, base))
    } else {
        None
    };

    if args.compare_2d && pz > 1 {
        let (br, bc, base) = baseline.as_ref().unwrap();
        println!("\n2D baseline ({br} x {bc} x 1):");
        println!("  simulated time        = {:.4} s", base.makespan());
        println!(
            "  W_fact                = {} words per rank (max)",
            base.w_fact()
        );
        println!(
            "  3D speedup            = {:.2}x   comm reduction = {:.2}x   memory overhead = {:+.0}%",
            base.makespan() / out_factor_makespan(&prep, &cfg),
            base.w_fact() as f64 / (out.w_fact() + out.w_red()).max(1) as f64,
            100.0 * (out.total_peak_bytes() as f64 / base.total_peak_bytes() as f64 - 1.0),
        );
    }

    if let Some(path) = &args.conformance {
        use salu::costmodel::{check_conformance, ConformanceInput};
        // Pz = 1: the 3D run *is* the 2D baseline, so the ratios are 1
        // on both sides and the report trivially passes.
        let (mem2d_words, w2d_words) = match &baseline {
            Some((_, _, base)) => (base.max_peak_bytes() as f64 / 8.0, base.w_fact() as f64),
            None => (
                out.max_peak_bytes() as f64 / 8.0,
                (out.w_fact() + out.w_red()) as f64,
            ),
        };
        let rep = check_conformance(ConformanceInput {
            n: prep.a.nrows as f64,
            p: (pr * pc * pz) as f64,
            pz: pz as f64,
            planar,
            mem3d_words: out.max_peak_bytes() as f64 / 8.0,
            mem2d_words,
            w3d_words: (out.w_fact() + out.w_red()) as f64,
            w2d_words,
            wz_words: out.w_red() as f64,
        });
        println!("\ncost-model conformance:");
        print!("{}", rep.render());
        emit_json(path, &rep.to_json(), "conformance report");
        if !rep.passed {
            exit(1);
        }
    }
}

/// The `--report` digest: every observability subsystem's headline numbers
/// in one place — simulated critical path, ledger memory by class, wire
/// volume by class and axis, and the host-time phase breakdown.
fn print_report(out: &salu::lu3d::Output3d) {
    use salu::simgrid::{CommClass, GridAxis, HostPhase, MemClass};
    println!("\n== run digest ==");
    println!("simulated makespan      = {:.6} s", out.makespan());
    if let Some(cp) = out.critical_path() {
        println!("{}", cp.render());
    }
    println!(
        "peak memory             = {:.2} MB max rank / {:.2} MB all ranks; at the peak instant, by class:",
        out.max_peak_bytes() as f64 / 1e6,
        out.total_peak_bytes() as f64 / 1e6
    );
    for class in MemClass::ALL {
        let bytes = out.peak_class_bytes(class);
        if bytes > 0 {
            println!("  {:<22}= {:.2} MB", class.as_str(), bytes as f64 / 1e6);
        }
    }
    let total_words: u64 = CommClass::ALL.iter().map(|&c| out.class_words(c)).sum();
    println!("wire volume             = {total_words} words, by class:");
    for class in CommClass::ALL {
        let words = out.class_words(class);
        if words > 0 {
            println!("  {:<22}= {words} words", class.as_str());
        }
    }
    println!(
        "  by axis: {}",
        GridAxis::ALL
            .iter()
            .map(|&ax| format!("{} {}", ax.as_str(), out.axis_words(ax)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let Some(reports) = out.hostprof_reports() else {
        return;
    };
    let wall_sum: f64 = reports.iter().map(|r| r.wall_secs).sum();
    let wall_max = reports.iter().fold(0.0f64, |m, r| m.max(r.wall_secs));
    let flops: u64 = reports.iter().map(|r| r.flops).sum();
    println!(
        "host time               = {:.4} s max rank / {:.4} s all ranks \
         ({:.2} Mflop/s effective), by phase:",
        wall_max,
        wall_sum,
        if wall_max > 0.0 {
            flops as f64 / wall_max / 1e6
        } else {
            0.0
        }
    );
    for phase in HostPhase::ALL {
        let secs: f64 = reports.iter().map(|r| r.phase_secs(phase)).sum();
        if secs > 0.0 {
            println!(
                "  {:<22}= {:>9.4} s  ({:4.1}%)",
                phase.as_str(),
                secs,
                if wall_sum > 0.0 {
                    100.0 * secs / wall_sum
                } else {
                    0.0
                }
            );
        }
    }
}

/// Write a JSON document to `path`, or to stdout when `path` is `-`.
fn emit_json(path: &str, doc: &salu::simgrid::Json, what: &str) {
    if path == "-" {
        println!("{}", doc.pretty());
    } else {
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("failed to write {path}: {e}");
            exit(1);
        }
        println!("{what} written to {path}");
    }
}

/// Factor-only makespan for the timing comparison (excludes solve).
fn out_factor_makespan(prep: &Prepared, cfg: &SolverConfig) -> f64 {
    factor_only(prep, cfg).makespan()
}

/// Near-square layer for the baseline run.
fn bench_layer(p: usize) -> (usize, usize) {
    let mut pr = (p as f64).sqrt() as usize;
    while pr > 1 && !p.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), p / pr.max(1))
}
