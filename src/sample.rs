//! A small, fully deterministic traced 3D run whose observability artifacts
//! (Chrome trace + metrics JSON + memory profile + wire-volume report) are
//! pinned as golden files under `results/`. The example `planar_scaling` writes them; the
//! `observability` integration test asserts they are byte-identical to the
//! committed copies, so any change to the simulation's timing, traffic, or
//! export format shows up as a reviewable diff.

use crate::prelude::*;

/// The fixed configuration behind the sample artifacts: a 10x10 planar
/// Poisson problem factored and solved on a 1x2x2 grid (Pz = 2) under the
/// Edison-like machine model, with tracing on.
pub fn sample_output() -> Output3d {
    let nx = 10;
    let a = crate::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 7);
    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 11) as f64) - 5.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 16, 16);
    let cfg = SolverConfig {
        pr: 1,
        pc: 2,
        pz: 2,
        model: TimeModel::edison_like(),
        tracing: true,
        ..Default::default()
    };
    factor_and_solve(&prep, &cfg, Some(b))
}

/// The sample run's `(chrome_trace, metrics, memprof, commvol)` documents,
/// pretty-printed. Byte-stable: the simulation is deterministic and the
/// JSON writer keeps insertion order.
pub fn sample_artifacts() -> (String, String, String, String) {
    let out = sample_output();
    let trace = out.chrome_trace().expect("sample run traces").pretty();
    let metrics = out.metrics().to_json().pretty();
    let memprof = out.mem_profile().pretty();
    let commvol = out.commvol_profile().pretty();
    (trace, metrics, memprof, commvol)
}
