#![forbid(unsafe_code)]

//! # salu — a communication-avoiding 3D sparse LU factorization
//!
//! A full-stack Rust reproduction of *"A Communication-Avoiding 3D LU
//! Factorization Algorithm for Sparse Matrices"* (Sao, Li, Vuduc;
//! IPDPS 2018) — the 3D algorithm that later shipped in SuperLU_DIST.
//!
//! The stack, bottom to top:
//!
//! | crate | role |
//! |---|---|
//! | [`sparsemat`] | sparse formats, stencil/KKT generators, Matrix Market I/O |
//! | [`ordering`] | nested dissection (geometric + multilevel), separator trees |
//! | [`symbolic`] | supernodes, block fill, elimination trees, cost prediction |
//! | [`densela`] | dense GEMM/TRSM/GETRF kernels with flop metering |
//! | [`simgrid`] | simulated distributed machine: ranks, collectives, traffic counters, α-β clocks |
//! | [`slu2d`] | the SuperLU_DIST-style 2D baseline factorization + solve |
//! | [`lu3d`] | **the paper's contribution**: tree-forest partitioning, replicated ancestors, Algorithm 1 |
//! | [`costmodel`] | the closed-form cost models of the paper's Table II |
//!
//! ## Quickstart
//!
//! ```
//! use salu::prelude::*;
//!
//! // A 2D Poisson problem (the paper's planar model matrix, scaled down).
//! let a = sparsemat::matgen::grid2d_5pt(16, 16, 0.1, 0);
//! let x_true: Vec<f64> = (0..a.nrows).map(|i| (i % 5) as f64).collect();
//! let b = a.matvec(&x_true);
//!
//! // Order + analyze once, factor with a 1x2x2 process grid (Pz = 2).
//! let prep = Prepared::new(
//!     a,
//!     Geometry::Grid2d { nx: 16, ny: 16 },
//!     8,  // nested-dissection leaf size
//!     8,  // max supernode width
//! );
//! let cfg = SolverConfig { pr: 1, pc: 2, pz: 2, ..Default::default() };
//! let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
//!
//! // Communication statistics, the quantities the paper optimizes:
//! println!("W_fact = {} words, W_red = {} words", out.w_fact(), out.w_red());
//! let x = out.x.unwrap();
//! assert!(prep.a.residual_inf(&x, &b) < 1e-8);
//! ```

pub mod sample;

pub use commplan;
pub use costmodel;
pub use dense25d;
pub use densela;
pub use lu3d;
pub use ordering;
pub use simgrid;
pub use slu2d;
pub use sparsemat;
pub use symbolic;

/// The names most programs need.
pub mod prelude {
    pub use costmodel::{Alg, NonPlanarModel, PlanarModel};
    pub use lu3d::solver::{
        factor_and_solve, factor_only, try_factor_and_solve, try_factor_only, Output3d,
        SolverConfig, SolverError,
    };
    pub use lu3d::EtreeForest;
    pub use simgrid::{Backend, FaultPlan, Machine, RetryPolicy, Schedule, TimeModel};
    pub use slu2d::driver::{run_2d, Prepared};
    pub use slu2d::factor2d::FactorOpts;
    pub use sparsemat::testmats::{test_matrix, test_suite, Geometry, MatrixClass, Scale};
    pub use sparsemat::{Csr, Perm};
}
