//! Host-time profiling invariants of full 3D runs: phase attribution must
//! cover ~100% of each rank's measured wall clock, profiling must never
//! perturb the numerics, and the exported documents must stay well-formed.

use salu::prelude::*;
use salu::simgrid::obs::validate_chrome_trace;
use salu::simgrid::{HostPhase, Json};

fn pinned_run(host_profiling: bool, tracing: bool) -> Output3d {
    let nx = 16;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 3);
    let x_true: Vec<f64> = (0..a.nrows).map(|i| (i % 7) as f64).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
    let cfg = SolverConfig {
        pr: 2,
        pc: 2,
        pz: 2,
        model: TimeModel::edison_like(),
        host_profiling,
        tracing,
        ..Default::default()
    };
    factor_and_solve(&prep, &cfg, Some(b))
}

#[test]
fn attribution_sums_to_wall_on_every_rank() {
    let out = pinned_run(true, false);
    for (rank, rep) in out.reports.iter().enumerate() {
        let hp = rep
            .hostprof
            .as_ref()
            .unwrap_or_else(|| panic!("rank {rank} has no host profile"));
        assert!(hp.wall_secs > 0.0, "rank {rank} wall");
        // The orchestration phase absorbs wall time not covered by any
        // scope, so the per-phase self times must reconstruct the wall
        // clock. The band covers only ns-quantization and the tiny skew
        // between the wall probe and the last scope close.
        let attributed = hp.attributed_secs();
        let rel = (attributed - hp.wall_secs).abs() / hp.wall_secs;
        assert!(
            rel < 0.01,
            "rank {rank}: attributed {attributed} vs wall {} ({:.4}% off)",
            hp.wall_secs,
            rel * 100.0
        );
        // A factoring rank must have spent observable time in the panel
        // and wait phases; nothing may be negative by construction (u64).
        assert!(
            hp.phase_secs(HostPhase::CommWait) > 0.0,
            "rank {rank} comm-wait"
        );
    }
    // Some rank did panel work and the solve phases ran somewhere.
    let total = |p: HostPhase| -> f64 {
        out.hostprof_reports()
            .unwrap()
            .iter()
            .map(|r| r.phase_secs(p))
            .sum()
    };
    assert!(total(HostPhase::PanelFactor) > 0.0);
    assert!(total(HostPhase::SolveFwd) > 0.0);
    assert!(total(HostPhase::SolveBwd) > 0.0);
}

#[test]
fn profiling_never_perturbs_the_factors() {
    let profiled = pinned_run(true, false);
    let plain = pinned_run(false, false);
    assert_eq!(
        profiled.factor_digest, plain.factor_digest,
        "host profiling changed the numerics"
    );
    assert_eq!(
        profiled.makespan(),
        plain.makespan(),
        "host profiling changed the simulated clock"
    );
    assert!(plain.reports.iter().all(|r| r.hostprof.is_none()));
    assert!(plain.hostprof_profile().is_none());
}

#[test]
fn hostprof_document_is_well_formed() {
    let out = pinned_run(true, false);
    let doc = out.hostprof_profile().expect("profiling was on");
    let doc = Json::parse(&doc.pretty()).expect("emitted JSON parses back");
    assert_eq!(
        doc.get("ranks").and_then(Json::as_arr).map(<[Json]>::len),
        Some(8),
        "one entry per rank"
    );
    assert!(doc.get("max_wall_secs").and_then(Json::as_f64).unwrap() > 0.0);
    let folded = doc
        .get("folded_stacks")
        .and_then(Json::as_str)
        .expect("folded stacks text");
    assert!(folded.contains("rank 0;"), "folded stacks name ranks");
}

#[test]
fn host_counter_tracks_appear_only_when_both_flags_are_on() {
    let both = pinned_run(true, true);
    let doc = both.chrome_trace().expect("tracing was on");
    validate_chrome_trace(&doc).expect("trace validates with host counters");
    let has_host_track = |doc: &Json| {
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .any(|e| e.get("cat").and_then(Json::as_str) == Some("host"))
    };
    assert!(has_host_track(&doc), "host counter tracks in the trace");
    // Tracing without host profiling keeps the golden trace shape: no
    // host tracks appear.
    let trace_only = pinned_run(false, true);
    let doc = trace_only.chrome_trace().expect("tracing was on");
    validate_chrome_trace(&doc).expect("plain trace still validates");
    assert!(!has_host_track(&doc), "no host tracks without profiling");
}
