//! End-to-end regression for `SolverConfig::batched_schur`: flipping the
//! batched gather-GEMM-scatter Schur path on must not change anything the
//! simulation computes — the solution is bitwise identical and the message
//! trace (every send, receive, span, timestamp, payload size, simulated
//! clock) is byte-identical. The one legitimate difference is the
//! `SchurBuf` memory-counter track: the batched path's gather arena is
//! charged to the ledger (that is the point of the accounting), so its
//! samples are larger while the update runs.

use salu::prelude::*;

fn run_once(batched: bool) -> (Vec<f64>, String) {
    let nx = 14;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 9);
    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 7) as f64) - 3.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
    let cfg = SolverConfig {
        pr: 2,
        pc: 1,
        pz: 2,
        model: TimeModel::edison_like(),
        tracing: true,
        refine_steps: 1,
        batched_schur: batched,
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b));
    let trace = out.chrome_trace().expect("tracing was on").pretty();
    let x = out.x.expect("solution");
    (x, trace)
}

/// Strip the `SchurBuf` samples from a pretty-printed trace's memory
/// counter events, keeping everything else (including the sample *count*,
/// so a path that added or dropped counter events would still fail).
fn without_schurbuf_samples(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"SchurBuf\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn batched_schur_is_observationally_identical() {
    let (x_off, t_off) = run_once(false);
    let (x_on, t_on) = run_once(true);
    assert_eq!(x_off.len(), x_on.len());
    for (i, (a, b)) in x_off.iter().zip(&x_on).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "solution component {i} differs: {a} vs {b}"
        );
    }
    // Same number of trace lines: the batched path emits exactly the same
    // events, only SchurBuf counter *values* may differ.
    assert_eq!(
        t_off.lines().count(),
        t_on.lines().count(),
        "batched Schur path changed the event structure"
    );
    assert_eq!(
        without_schurbuf_samples(&t_off),
        without_schurbuf_samples(&t_on),
        "batched Schur path changed the simulated schedule"
    );
}
