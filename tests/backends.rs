//! Differential backend suite: the event backend must be observationally
//! indistinguishable from the threaded backend on everything the
//! simulation defines — factor digests, simulated makespans, wire-volume
//! and memory ledgers, and the static plan-check verdict — across the
//! generator × grid-shape × option matrix. Only host-side artifacts
//! (wall clock, hostprof) may differ.
//!
//! The paper-scale case (P = 4096 in one process) is `#[ignore]`d here
//! because debug-mode builds take minutes on it; CI runs it in release
//! (`cargo test --release --test backends -- --ignored`) and the smoke
//! campaign factors the same point end-to-end.

use commplan::{build_plan, check_plan, compare_with_measured};
use lu3d::solver::{try_factor_only, SolverConfig};
use lu3d::EtreeForest;
use salu::prelude::*;
use salu::simgrid::Grid3d;
use sparsemat::matgen;
use sparsemat::Csr;

struct Case {
    label: &'static str,
    a: Csr,
    geometry: Geometry,
    grid: (usize, usize, usize),
    batched: bool,
    lookahead: usize,
    fault_spec: Option<&'static str>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "grid2d:16 2x2x1 (no Z replication)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (2, 2, 1),
            batched: false,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "grid2d:16 2x2x4 lookahead=0 (deep Z, eager)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (2, 2, 4),
            batched: false,
            lookahead: 0,
            fault_spec: None,
        },
        Case {
            label: "grid2d:16 4x1x2 batched (tall layer)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (4, 1, 2),
            batched: true,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "grid2d:20 2x2x2 chaos + retry",
            a: matgen::grid2d_5pt(20, 20, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 20, ny: 20 },
            grid: (2, 2, 2),
            batched: false,
            lookahead: 8,
            fault_spec: Some("drop:p=0.05;dup:p=0.02;delay:p=0.1,secs=2e-3"),
        },
        Case {
            label: "grid3d:6 2x2x2 batched",
            a: matgen::grid3d_7pt(6, 6, 6, 0.1, 1),
            geometry: Geometry::Grid3d {
                nx: 6,
                ny: 6,
                nz: 6,
            },
            grid: (2, 2, 2),
            batched: true,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "kkt:4 2x2x2 lookahead=4",
            a: matgen::kkt_3d(4, 4, 4, 1e-2, 1),
            geometry: Geometry::General,
            grid: (2, 2, 2),
            batched: false,
            lookahead: 4,
            fault_spec: None,
        },
    ]
}

fn config(case: &Case, backend: Backend) -> SolverConfig {
    let (pr, pc, pz) = case.grid;
    SolverConfig {
        pr,
        pc,
        pz,
        model: TimeModel::edison_like(),
        lookahead: case.lookahead,
        batched_schur: case.batched,
        backend,
        fault_plan: case
            .fault_spec
            .map(|s| FaultPlan::parse(s, 7).expect("fault spec parses")),
        retry: case.fault_spec.map(|_| RetryPolicy::default()),
        ..Default::default()
    }
}

/// Every simulated observable of a factor-only run is backend-independent,
/// bitwise: digest, makespan, wire ledger, memory ledger.
#[test]
fn every_config_is_bitwise_identical_across_backends() {
    for case in cases() {
        let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
        let threaded = try_factor_only(&prep, &config(&case, Backend::Threaded))
            .unwrap_or_else(|e| panic!("{}: threaded run failed: {e}", case.label));
        let event = try_factor_only(&prep, &config(&case, Backend::Event))
            .unwrap_or_else(|e| panic!("{}: event run failed: {e}", case.label));

        assert_eq!(
            threaded.factor_digest, event.factor_digest,
            "{}: factor digests diverge",
            case.label
        );
        assert_eq!(
            threaded.makespan().to_bits(),
            event.makespan().to_bits(),
            "{}: simulated makespans diverge ({} vs {})",
            case.label,
            threaded.makespan(),
            event.makespan()
        );
        assert_eq!(
            threaded.commvol_profile().pretty(),
            event.commvol_profile().pretty(),
            "{}: wire-volume reports diverge",
            case.label
        );
        assert_eq!(
            threaded.mem_profile().pretty(),
            event.mem_profile().pretty(),
            "{}: memory-ledger reports diverge",
            case.label
        );
    }
}

/// The static communication plan verifies against the measured ledger of
/// BOTH backends — the plan-check gate is backend-blind.
#[test]
fn plan_check_accepts_both_backends_ledgers() {
    for case in cases() {
        let (pr, pc, pz) = case.grid;
        let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
        let forest = EtreeForest::build(&prep.tree, &prep.sym, pz);
        let plan = build_plan(&prep.sym, &forest, Grid3d::new(pr, pc, pz), case.lookahead);
        let audit = check_plan(&plan);
        assert!(audit.ok(), "{}: {:?}", case.label, audit.findings);

        let mut stats_msgs = Vec::new();
        for backend in [Backend::Threaded, Backend::Event] {
            let out = try_factor_only(&prep, &config(&case, backend))
                .unwrap_or_else(|e| panic!("{}: {backend} run failed: {e}", case.label));
            let ledgers: Vec<_> = out.reports.iter().map(|r| r.commvol.clone()).collect();
            match compare_with_measured(&plan, &ledgers) {
                Ok(stats) => stats_msgs.push(stats.msgs),
                Err(mismatches) => panic!(
                    "{}: plan != {backend} ledger:\n{}",
                    case.label,
                    mismatches.join("\n")
                ),
            }
        }
        assert_eq!(
            stats_msgs[0], stats_msgs[1],
            "{}: plan-check compared different traffic per backend",
            case.label
        );
    }
}

/// Paper-scale smoke: a 64x64x1 process grid — P = 4096 ranks — factored
/// in one process by the event backend. Threaded could not sensibly run
/// this (4096 free-running OS threads); the scheduler just takes turns.
#[test]
#[ignore = "paper-scale (minutes in debug); CI runs it in release via --ignored"]
fn event_backend_factors_p4096_in_one_process() {
    let n = 64usize;
    let a = matgen::grid2d_5pt(n, n, 0.1, 1);
    let prep = Prepared::new(a, Geometry::Grid2d { nx: n, ny: n }, 16, 24);
    let cfg = SolverConfig {
        pr: 64,
        pc: 64,
        pz: 1,
        model: TimeModel::edison_like(),
        backend: Backend::Event,
        ..Default::default()
    };
    let out = try_factor_only(&prep, &cfg).expect("paper-scale event run");
    assert_eq!(out.reports.len(), 4096);
    assert!(out.makespan() > 0.0);
    assert!(out.w_fact() > 0, "no factor-phase traffic recorded");
}
