//! Determinism regression: the simulated 3D factorization is bitwise
//! reproducible. Two identical runs must produce identical factors and
//! solutions AND identical message traces — the property the paper's
//! deterministic reduction orders guarantee, and the property the
//! commcheck race detector exists to protect.

use salu::prelude::*;
use salu::simgrid::{commcheck, Json};

fn run_once(sanitize: bool) -> (Vec<f64>, String, String) {
    run_on(sanitize, Backend::Threaded)
}

fn run_on(sanitize: bool, backend: Backend) -> (Vec<f64>, String, String) {
    let nx = 12;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 5);
    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 9) as f64) - 4.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
    let cfg = SolverConfig {
        pr: 2,
        pc: 1,
        pz: 2,
        model: TimeModel::edison_like(),
        tracing: true,
        sanitize,
        backend,
        refine_steps: 1,
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b));
    let trace = out.chrome_trace().expect("tracing was on").pretty();
    let commvol = out.commvol_profile().pretty();
    let x = out.x.expect("solution");
    (x, trace, commvol)
}

fn assert_bitwise_equal(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "solution component {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let (x1, t1, w1) = run_once(false);
    let (x2, t2, w2) = run_once(false);
    assert_bitwise_equal(&x1, &x2);
    // The message traces — every send, receive, timestamp, payload size —
    // must also match byte for byte.
    assert_eq!(t1, t2, "chrome traces differ between identical runs");
    // So must the wire-volume report: every (phase, class, level, axis)
    // cell and every per-edge total.
    assert_eq!(w1, w2, "wire-volume reports differ between identical runs");
    // And the offline checker agrees, event by event.
    let (d1, d2) = (Json::parse(&t1).unwrap(), Json::parse(&t2).unwrap());
    commcheck::check_determinism(&d1, &d2).expect("schedules must be identical");
}

#[test]
fn event_backend_reproduces_the_threaded_schedule() {
    // Cross-backend determinism: the event scheduler's cooperative order
    // must reproduce not just the solution but the entire simulated
    // message schedule of free-running threads, byte for byte.
    let (xt, tt, wt) = run_on(false, Backend::Threaded);
    let (xe, te, we) = run_on(false, Backend::Event);
    assert_bitwise_equal(&xt, &xe);
    assert_eq!(tt, te, "chrome traces differ between backends");
    assert_eq!(wt, we, "wire-volume reports differ between backends");
    let (dt, de) = (Json::parse(&tt).unwrap(), Json::parse(&te).unwrap());
    commcheck::check_determinism(&dt, &de).expect("schedules must be identical across backends");
    // And the event backend is self-deterministic, sanitized or not.
    let (xe2, te2, we2) = run_on(true, Backend::Event);
    assert_bitwise_equal(&xe, &xe2);
    assert_eq!(te, te2, "sanitizer changed the event schedule");
    assert_eq!(we, we2, "sanitizer changed the event wire ledger");
}

#[test]
fn sanitizer_does_not_perturb_the_simulation() {
    // Vector clocks and the detector thread ride along without changing a
    // single simulated event: traces with and without the sanitizer are
    // byte-identical.
    let (x_plain, t_plain, w_plain) = run_once(false);
    let (x_san, t_san, w_san) = run_once(true);
    assert_bitwise_equal(&x_plain, &x_san);
    assert_eq!(t_plain, t_san, "sanitizer changed the simulated schedule");
    assert_eq!(w_plain, w_san, "sanitizer changed the wire ledger");
}
