//! Observability invariants of full 3D runs: phase-labelled traffic,
//! Chrome trace export, critical-path attribution, and the pinned sample
//! artifacts under `results/`.

use proptest::prelude::*;
use salu::prelude::*;
use salu::simgrid::obs::validate_chrome_trace;
use salu::simgrid::{validate_trace, Json, Machine, SpanCat};

fn traced_run(pz: usize, rhs: bool) -> Output3d {
    let nx = 12;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 3);
    let b = if rhs {
        let x_true: Vec<f64> = (0..a.nrows).map(|i| (i % 7) as f64).collect();
        Some(a.matvec(&x_true))
    } else {
        None
    };
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
    let cfg = SolverConfig {
        pr: 1,
        pc: 2,
        pz,
        model: TimeModel::edison_like(),
        tracing: true,
        ..Default::default()
    };
    factor_and_solve(&prep, &cfg, b)
}

#[test]
fn traffic_phases_are_exactly_fact_reduce_solve() {
    let out = traced_run(2, true);
    let mut phases: Vec<&str> = out
        .reports
        .iter()
        .flat_map(|r| r.traffic.keys().map(|k| k.as_str()))
        .collect();
    phases.sort_unstable();
    phases.dedup();
    assert_eq!(
        phases,
        vec!["fact", "reduce", "solve"],
        "traffic phase keys"
    );
    // In particular no message may ever be charged to the unlabeled
    // "default" phase: every communication path must set its phase first.
    for (rank, rep) in out.reports.iter().enumerate() {
        assert!(
            !rep.traffic.contains_key("default"),
            "rank {rank} has traffic in the default phase"
        );
    }
}

#[test]
fn chrome_trace_roundtrips_with_nesting_and_flows() {
    let out = traced_run(2, true);
    let doc = out.chrome_trace().expect("tracing was on");
    // Serialize and parse back: the exported document must be valid JSON
    // and a structurally sound trace (slices properly nested per track,
    // every flow-finish matched by a flow-start).
    let parsed = Json::parse(&doc.dump()).expect("trace must parse back");
    let stats = validate_chrome_trace(&parsed).expect("trace must validate");
    assert_eq!(stats.tracks, out.reports.len(), "one track per rank");
    // level -> phase -> supernode/collective: at least 3 deep.
    assert!(stats.max_nesting >= 3, "nesting {}", stats.max_nesting);
    assert!(stats.flow_pairs > 0, "send->recv flow arrows must appear");
    assert!(stats.events > stats.tracks, "spans + activities present");
}

#[test]
fn critical_path_attribution_covers_makespan() {
    let out = traced_run(4, true);
    let cp = out.critical_path().expect("tracing was on");
    assert!(cp.makespan > 0.0);
    // The path segments tile [0, makespan]: attribution is exhaustive.
    assert!(
        (cp.coverage() - 1.0).abs() < 1e-9,
        "critical-path coverage {}",
        cp.coverage()
    );
    let total: f64 = cp.attribution_fractions().values().sum();
    assert!((total - 1.0).abs() < 1e-9, "phase fractions sum to {total}");
    // With Pz = 4 the path must cross ranks at least once (ancestor
    // reductions serialize grids along z).
    assert!(cp.rank_hops >= 1, "hops {}", cp.rank_hops);
    let makespan = out.makespan();
    assert!(
        (cp.makespan - makespan).abs() <= 1e-12 * (1.0 + makespan),
        "cp makespan {} vs summary {makespan}",
        cp.makespan
    );
}

#[test]
fn factor_only_runs_have_no_solve_phase() {
    let out = {
        let nx = 12;
        let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 3);
        let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
        factor_only(
            &prep,
            &SolverConfig {
                pr: 1,
                pc: 2,
                pz: 2,
                tracing: true,
                ..Default::default()
            },
        )
    };
    for rep in &out.reports {
        assert!(!rep.traffic.contains_key("solve"));
        assert!(!rep.traffic.contains_key("default"));
    }
}

#[test]
fn sample_artifacts_match_pinned_goldens() {
    let (trace, metrics, memprof, commvol) = salu::sample::sample_artifacts();
    let root = env!("CARGO_MANIFEST_DIR");
    let want_trace = std::fs::read_to_string(format!("{root}/results/sample_trace.json"))
        .expect("run `cargo run --example planar_scaling` to create the goldens");
    let want_metrics = std::fs::read_to_string(format!("{root}/results/sample_metrics.json"))
        .expect("run `cargo run --example planar_scaling` to create the goldens");
    let want_memprof = std::fs::read_to_string(format!("{root}/results/sample_memprof.json"))
        .expect("run `cargo run --example planar_scaling` to create the goldens");
    let want_commvol = std::fs::read_to_string(format!("{root}/results/sample_commvol.json"))
        .expect("run `cargo run --example planar_scaling` to create the goldens");
    // Byte-identical: the simulation and the JSON writer are deterministic.
    // On mismatch, rerun the example and review the diff like any golden.
    assert_eq!(trace, want_trace, "results/sample_trace.json is stale");
    assert_eq!(
        metrics, want_metrics,
        "results/sample_metrics.json is stale"
    );
    assert_eq!(
        memprof, want_memprof,
        "results/sample_memprof.json is stale"
    );
    assert_eq!(
        commvol, want_commvol,
        "results/sample_commvol.json is stale"
    );
    // And the pinned trace itself must stay a valid Chrome trace, now with
    // memory and wire counter tracks alongside the slices.
    let stats = validate_chrome_trace(&Json::parse(&want_trace).unwrap()).unwrap();
    assert!(stats.max_nesting >= 3 && stats.flow_pairs > 0);
    assert!(
        stats.counter_events > 0,
        "sample trace must carry memory counter tracks"
    );
    assert!(
        want_trace.contains("\"wire rank 0\""),
        "sample trace must carry wire counter tracks"
    );
    // The pinned wire report names every class and axis it charges.
    let doc = Json::parse(&want_commvol).unwrap();
    assert!(doc.get("total_sent_words").unwrap().as_f64().unwrap() > 0.0);
    assert!(doc.get("by_class").unwrap().get("LPanel").is_some());
    assert!(doc.get("by_axis").unwrap().get("z").is_some());
}

#[test]
fn memory_peak_attribution_sums_to_peak_on_every_rank() {
    let out = traced_run(4, true);
    for (rank, rep) in out.reports.iter().enumerate() {
        let m = &rep.memprof;
        assert!(m.peak_bytes > 0, "rank {rank} never allocated");
        // 100% of the peak instant is attributed to tagged classes: the
        // class+level breakdown is a snapshot of the ledger at peak time.
        assert_eq!(
            m.peak_attr_sum(),
            m.peak_bytes,
            "rank {rank}: attribution covers {} of {} bytes",
            m.peak_attr_sum(),
            m.peak_bytes
        );
        // The folded legacy field agrees with the ledger.
        assert!(rep.peak_mem_bytes >= m.peak_bytes);
    }
}

#[test]
fn ancestor_replica_footprint_grows_with_pz() {
    use salu::simgrid::MemClass;
    let nx = 24;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 3);
    let prep = Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8);
    let mut prev = 0u64;
    for pz in [1usize, 2, 4, 8] {
        let out = factor_only(
            &prep,
            &SolverConfig {
                pr: 1,
                pc: 2,
                pz,
                model: TimeModel::edison_like(),
                ..Default::default()
            },
        );
        let bytes = out.peak_class_bytes(MemClass::AncestorReplica);
        assert!(
            bytes >= prev,
            "AncestorReplica shrank from {prev} to {bytes} at Pz={pz}"
        );
        if pz > 1 {
            assert!(bytes > 0, "replication must appear at Pz={pz}");
        }
        prev = bytes;
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// `validate_trace` accepts whatever span nesting the recorder produces:
    /// random interleavings of span enter/exit, phase changes, and compute
    /// always yield a well-formed store (chronological activities, children
    /// inside parents, depths consistent).
    #[test]
    fn recorder_always_yields_valid_traces(
        seed in 0u64..10_000,
        n_ops in 1usize..60,
        max_flops in 1u64..50,
    ) {
        let m = Machine::new(1, TimeModel {
            alpha: 0.0,
            beta: 0.0,
            flops_per_sec: 1.0,
        })
        .with_tracing();
        let out = m.run(move |rank| {
            // Deterministic op sequence from the seed (splitmix64-style).
            let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                s ^= s >> 30;
                s = s.wrapping_mul(0xbf58476d1ce4e5b9);
                s ^= s >> 27;
                s
            };
            let mut stack = Vec::new();
            for i in 0..n_ops {
                match next() % 4 {
                    0 => {
                        let cat = [SpanCat::Level, SpanCat::Node, SpanCat::Other]
                            [(next() % 3) as usize];
                        stack.push(rank.span_enter(cat, &format!("s{i}")));
                    }
                    1 => {
                        if let Some(id) = stack.pop() {
                            rank.span_exit(id);
                        }
                    }
                    2 => rank.set_phase(["fact", "reduce", "solve"][(next() % 3) as usize]),
                    _ => rank.advance_compute(1 + next() % max_flops),
                }
            }
        });
        let rep = &out.reports[0];
        prop_assert!(validate_trace(rep).is_ok(), "{:?}", validate_trace(rep));
        let trace = rep.trace.as_ref().unwrap();
        for s in &trace.spans {
            if let Some(p) = s.parent {
                prop_assert!(trace.spans[p].start <= s.start + 1e-15);
                prop_assert!(trace.spans[p].end >= s.end - 1e-15);
            }
        }
    }
}
