//! Failure-injection and edge-case tests: the paths DESIGN.md calls out —
//! zero pivots under static pivoting, empty forests on some grids, more
//! grids than subtrees, degenerate shapes.

use salu::prelude::*;
use salu::sparsemat::Coo;

/// A matrix engineered to hit exact zero pivots without row pivoting: a
/// saddle-point system with a zero (2,2) block.
fn hard_zero_pivot_matrix(m: usize) -> Csr {
    let n = 2 * m;
    let mut coo = Coo::new(n, n);
    for i in 0..m {
        coo.push(i, i, 2.0);
        if i + 1 < m {
            coo.push(i, i + 1, -0.5);
            coo.push(i + 1, i, -0.5);
        }
        // Constraint coupling with an exactly zero diagonal block.
        coo.push(m + i, i, 1.0);
        coo.push(i, m + i, 1.0);
    }
    coo.to_csr()
}

#[test]
fn static_pivoting_survives_zero_pivots() {
    let a = hard_zero_pivot_matrix(12);
    let n = a.nrows;
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::General, 6, 6);
    let cfg = SolverConfig {
        pr: 1,
        pc: 2,
        pz: 2,
        pivot_threshold: 1e-8,
        model: TimeModel::zero(),
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
    // Zero pivots must have been perturbed, not crashed on.
    let x = out.x.expect("solution despite zero pivots");
    // Static pivoting + perturbation is approximate; the paper pairs it
    // with iterative refinement. Accept a loose residual here.
    let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    let r = prep.a.residual_inf(&x, &b) / bmax;
    assert!(r < 1e-3, "residual {r}");
}

#[test]
fn iterative_refinement_recovers_static_pivoting_accuracy() {
    // The paper's accuracy story (§VI): static pivoting perturbs pivots and
    // iterative refinement recovers the lost digits. On a matrix with
    // exact zero pivots, refinement must improve the residual by orders of
    // magnitude.
    let a = hard_zero_pivot_matrix(16);
    let n = a.nrows;
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::General, 6, 6);
    let run = |steps: usize| -> f64 {
        let cfg = SolverConfig {
            pr: 1,
            pc: 2,
            pz: 2,
            pivot_threshold: 1e-6,
            refine_steps: steps,
            model: TimeModel::zero(),
            ..Default::default()
        };
        let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prep.a.residual_inf(&out.x.unwrap(), &b) / bmax
    };
    let r0 = run(0);
    let r2 = run(2);
    assert!(r2 < 1e-10, "refined residual {r2}");
    assert!(
        r2 < r0 / 10.0 || r0 < 1e-12,
        "refinement must help: {r0} -> {r2}"
    );
}

#[test]
fn more_grids_than_subtrees_still_works() {
    // A tiny matrix whose elimination tree has fewer independent subtrees
    // than Pz: some grids get empty forests and must idle gracefully.
    let a = salu::sparsemat::matgen::grid2d_5pt(6, 6, 0.1, 3);
    let n = a.nrows;
    let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::Grid2d { nx: 6, ny: 6 }, 4, 4);
    let cfg = SolverConfig {
        pr: 1,
        pc: 1,
        pz: 8, // 8 grids for a 36-vertex problem
        model: TimeModel::zero(),
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
    let x = out.x.expect("solution");
    assert!(prep.a.residual_inf(&x, &b) < 1e-8);
}

#[test]
fn single_vertex_matrix() {
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, 4.0);
    let a = coo.to_csr();
    let prep = Prepared::new(a, Geometry::General, 4, 4);
    let out = factor_and_solve(
        &prep,
        &SolverConfig {
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(vec![8.0]),
    );
    assert!((out.x.unwrap()[0] - 2.0).abs() < 1e-12);
}

#[test]
fn diagonal_matrix_factors_trivially() {
    let n = 30;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, (i + 1) as f64);
    }
    let a = coo.to_csr();
    let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64 * 3.0).collect();
    let prep = Prepared::new(a, Geometry::General, 4, 4);
    let out = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 2,
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b),
    );
    let x = out.x.unwrap();
    for v in x {
        assert!((v - 3.0).abs() < 1e-12);
    }
}

#[test]
fn disconnected_matrix_solves() {
    // Two independent subdomains: the separator between them is empty, the
    // etree is a forest with an empty root — exercises empty-separator
    // handling everywhere.
    let blk = salu::sparsemat::matgen::grid2d_5pt(5, 5, 0.1, 1);
    let m = blk.nrows;
    let mut coo = Coo::new(2 * m, 2 * m);
    for i in 0..m {
        for (j, v) in blk.row_cols(i).iter().zip(blk.row_vals(i)) {
            coo.push(i, *j, *v);
            coo.push(m + i, m + *j, *v);
        }
    }
    let a = coo.to_csr();
    let n = a.nrows;
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 6) as f64) - 2.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::General, 8, 8);
    let out = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 1,
            pc: 2,
            pz: 2,
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b.clone()),
    );
    let x = out.x.unwrap();
    assert!(prep.a.residual_inf(&x, &b) < 1e-8);
}

#[test]
fn huge_lookahead_window_is_safe() {
    let a = salu::sparsemat::matgen::grid2d_5pt(10, 10, 0.1, 2);
    let b: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let prep = Prepared::new(a, Geometry::Grid2d { nx: 10, ny: 10 }, 8, 8);
    let out = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 1,
            lookahead: 10_000, // window far beyond the supernode count
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b.clone()),
    );
    let x = out.x.unwrap();
    assert!(prep.a.residual_inf(&x, &b) < 1e-8);
}
