//! Plan == ledger: the static communication plan must reproduce the
//! measured wire-volume ledger of a factor-only run *exactly* — per
//! (phase, class, level, axis) cell and per peer edge — across a matrix of
//! configurations, under fault recovery, and for property-sampled configs.
//! Mutation tests prove the comparator actually catches planted extra and
//! missing sends with a named edge.

use commplan::{build_plan, check_plan, check_planar_volume, compare_with_measured, Dir};
use lu3d::solver::{factor_only, SolverConfig};
use lu3d::EtreeForest;
use proptest::prelude::*;
use simgrid::Grid3d;
use slu2d::driver::Prepared;
use sparsemat::matgen;
use sparsemat::testmats::Geometry;
use sparsemat::Csr;

struct Case {
    label: &'static str,
    a: Csr,
    geometry: Geometry,
    grid: (usize, usize, usize),
    lookahead: usize,
    batched_schur: bool,
    fault_spec: Option<&'static str>,
}

fn check_case(case: Case) -> commplan::CommPlan {
    let Case {
        label,
        a,
        geometry,
        grid: (pr, pc, pz),
        lookahead,
        batched_schur,
        fault_spec,
    } = case;
    let prep = Prepared::new(a, geometry, 16, 24);
    let cfg = SolverConfig {
        pr,
        pc,
        pz,
        lookahead,
        batched_schur,
        fault_plan: fault_spec.map(|s| simgrid::FaultPlan::parse(s, 7).expect("fault spec")),
        retry: fault_spec.map(|_| simgrid::RetryPolicy::default()),
        ..Default::default()
    };
    let grid = Grid3d::new(pr, pc, pz);
    let forest = EtreeForest::build(&prep.tree, &prep.sym, pz);
    let plan = build_plan(&prep.sym, &forest, grid, lookahead);

    let audit = check_plan(&plan);
    assert!(
        audit.ok(),
        "{label}: static plan checks failed:\n{}",
        audit.findings.join("\n")
    );
    assert!(audit.msgs > 0, "{label}: plan is empty");

    let out = factor_only(&prep, &cfg);
    let ledgers: Vec<_> = out.reports.iter().map(|r| r.commvol.clone()).collect();
    match compare_with_measured(&plan, &ledgers) {
        Ok(stats) => {
            assert_eq!(stats.ranks, pr * pc * pz, "{label}");
            assert!(stats.msgs > 0, "{label}: no planned traffic compared");
        }
        Err(mismatches) => panic!("{label}: plan != ledger:\n{}", mismatches.join("\n")),
    }
    plan
}

#[test]
fn plan_matches_ledger_small_3d() {
    check_case(Case {
        label: "grid2d:16 2x2x2",
        a: matgen::grid2d_5pt(16, 16, 0.1, 1),
        geometry: Geometry::Grid2d { nx: 16, ny: 16 },
        grid: (2, 2, 2),
        lookahead: 8,
        batched_schur: false,
        fault_spec: None,
    });
}

/// The CI conformance configuration (grid2d:64, 2x2x4) — the same shape the
/// `salu --plan-check` gate runs — plus the planar volume bound.
#[test]
fn plan_matches_ledger_conformance_grid() {
    let n = 64usize;
    let plan = check_case(Case {
        label: "grid2d:64 2x2x4",
        a: matgen::grid2d_5pt(n, n, 0.1, 1),
        geometry: Geometry::Grid2d { nx: n, ny: n },
        grid: (2, 2, 4),
        lookahead: 8,
        batched_schur: false,
        fault_spec: None,
    });
    match check_planar_volume(&plan, n * n) {
        Ok(line) => eprintln!("{line}"),
        Err(line) => panic!("planar volume bound violated: {line}"),
    }
}

/// Degenerate grids: no Z replication (pure 2D path, no reduce phase) and a
/// Z-only line (no row/col fan-out beyond self).
#[test]
fn plan_matches_ledger_degenerate_grids() {
    check_case(Case {
        label: "grid2d:16 2x2x1",
        a: matgen::grid2d_5pt(16, 16, 0.1, 1),
        geometry: Geometry::Grid2d { nx: 16, ny: 16 },
        grid: (2, 2, 1),
        lookahead: 8,
        batched_schur: false,
        fault_spec: None,
    });
    check_case(Case {
        label: "grid2d:16 1x1x2",
        a: matgen::grid2d_5pt(16, 16, 0.1, 1),
        geometry: Geometry::Grid2d { nx: 16, ny: 16 },
        grid: (1, 1, 2),
        lookahead: 8,
        batched_schur: false,
        fault_spec: None,
    });
}

/// Batched Schur gather-GEMM-scatter and zero lookahead change the local
/// compute schedule, not the wire program: the same plan must hold.
#[test]
fn plan_matches_ledger_batched_and_eager() {
    check_case(Case {
        label: "grid2d:16 2x1x2 batched lookahead=0",
        a: matgen::grid2d_5pt(16, 16, 0.1, 1),
        geometry: Geometry::Grid2d { nx: 16, ny: 16 },
        grid: (2, 1, 2),
        lookahead: 0,
        batched_schur: true,
        fault_spec: None,
    });
}

/// Non-planar generators: 3D Poisson and a KKT saddle-point system.
#[test]
fn plan_matches_ledger_other_generators() {
    check_case(Case {
        label: "grid3d:6 2x2x2",
        a: matgen::grid3d_7pt(6, 6, 6, 0.1, 1),
        geometry: Geometry::Grid3d {
            nx: 6,
            ny: 6,
            nz: 6,
        },
        grid: (2, 2, 2),
        lookahead: 8,
        batched_schur: false,
        fault_spec: None,
    });
    check_case(Case {
        label: "kkt:4 2x2x2",
        a: matgen::kkt_3d(4, 4, 4, 1e-2, 1),
        geometry: Geometry::General,
        grid: (2, 2, 2),
        lookahead: 4,
        batched_schur: false,
        fault_spec: None,
    });
}

/// A recovered chaos run (drops, duplicates, delays + retry) must match the
/// plan bit-for-bit: retransmissions are segregated into the `fault.*`
/// counters and never leak into the per-class ledger the plan predicts.
#[test]
fn plan_matches_ledger_under_fault_recovery() {
    check_case(Case {
        label: "grid2d:24 2x2x4 chaos",
        a: matgen::grid2d_5pt(24, 24, 0.1, 1),
        geometry: Geometry::Grid2d { nx: 24, ny: 24 },
        grid: (2, 2, 4),
        lookahead: 8,
        batched_schur: false,
        fault_spec: Some("drop:p=0.05;dup:p=0.02;delay:p=0.1,secs=2e-3"),
    });
}

fn build_small_plan() -> (commplan::CommPlan, Vec<obs::CommReport>) {
    let a = matgen::grid2d_5pt(12, 12, 0.1, 1);
    let prep = Prepared::new(a, Geometry::Grid2d { nx: 12, ny: 12 }, 16, 24);
    let cfg = SolverConfig {
        pr: 2,
        pc: 2,
        pz: 2,
        ..Default::default()
    };
    let forest = EtreeForest::build(&prep.tree, &prep.sym, cfg.pz);
    let plan = build_plan(&prep.sym, &forest, Grid3d::new(2, 2, 2), cfg.lookahead);
    let out = factor_only(&prep, &cfg);
    let ledgers = out.reports.iter().map(|r| r.commvol.clone()).collect();
    (plan, ledgers)
}

/// Mutation: delete one planned send. The static matching check must flag
/// the now-unbalanced channel, and the ledger comparison must fail naming
/// the mutated rank's edge.
#[test]
fn plan_check_catches_missing_send() {
    let (mut plan, ledgers) = build_small_plan();
    let rank = plan
        .events
        .iter()
        .position(|evs| evs.iter().any(|e| e.dir == Dir::Send))
        .expect("some rank sends");
    let idx = plan.events[rank]
        .iter()
        .position(|e| e.dir == Dir::Send)
        .unwrap();
    let removed = plan.events[rank].remove(idx);

    let audit = check_plan(&plan);
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.starts_with("unmatched channel")),
        "static check missed the deleted send: {:?}",
        audit.findings
    );

    let err = compare_with_measured(&plan, &ledgers).expect_err("mutated plan must mismatch");
    assert!(
        err.iter().any(
            |m| m.contains(&format!("rank {rank}")) || m.contains(&format!("{}", removed.peer))
        ),
        "mismatch does not name the mutated edge (rank {rank} -> {}):\n{}",
        removed.peer,
        err.join("\n")
    );
}

/// Mutation: plant one extra send (a duplicate of a real one). Same story:
/// named channel in the static audit, named edge in the comparison.
#[test]
fn plan_check_catches_extra_send() {
    let (mut plan, ledgers) = build_small_plan();
    let rank = plan
        .events
        .iter()
        .position(|evs| evs.iter().any(|e| e.dir == Dir::Send))
        .expect("some rank sends");
    let idx = plan.events[rank]
        .iter()
        .position(|e| e.dir == Dir::Send)
        .unwrap();
    let extra = plan.events[rank][idx].clone();
    let peer = extra.peer;
    plan.events[rank].push(extra);

    let audit = check_plan(&plan);
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.starts_with("unmatched channel")),
        "static check missed the planted send: {:?}",
        audit.findings
    );

    let err = compare_with_measured(&plan, &ledgers).expect_err("mutated plan must mismatch");
    assert!(
        err.iter()
            .any(|m| m.contains(&format!("rank {rank}")) && m.contains("planned")),
        "mismatch does not name the mutated edge (rank {rank} -> {peer}):\n{}",
        err.join("\n")
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full symbolic analysis + factorization
        .. ProptestConfig::default()
    })]

    /// For random (generator, grid shape, schedule, fault plan) draws the
    /// plan and the measured ledger agree exactly on every cell and edge.
    #[test]
    fn plan_matches_ledger_random_configs(
        k in 10usize..20,
        gen3d in 0u8..2,
        pr in 1usize..3,
        pc in 1usize..3,
        lpz in 0usize..3,
        lookahead in 0usize..3,
        batched in 0u8..2,
        faulty in 0u8..2,
    ) {
        let (a, geometry) = if gen3d == 1 {
            let k3 = 4 + k / 4;
            (
                matgen::grid3d_7pt(k3, k3, k3, 0.1, 1),
                Geometry::Grid3d { nx: k3, ny: k3, nz: k3 },
            )
        } else {
            (
                matgen::grid2d_5pt(k, k, 0.1, 1),
                Geometry::Grid2d { nx: k, ny: k },
            )
        };
        check_case(Case {
            label: "proptest config",
            a,
            geometry,
            grid: (pr, pc, 1 << lpz),
            lookahead: lookahead * 4,
            batched_schur: batched == 1,
            fault_spec: (faulty == 1).then_some("drop:p=0.03;dup:p=0.02"),
        });
    }
}
