//! End-to-end chaos tests: a pinned drop/delay/dup plan against the full
//! 3D solver. The two acceptance properties of the faultlab layer:
//!
//! 1. With recovery on, the faulted factorization is **bitwise identical**
//!    to the fault-free one (same `factor_digest`, same solution bits) —
//!    injected faults shift simulated clocks, never values.
//! 2. With recovery off, the same plan fails **structurally**: commcheck's
//!    detector aborts the run with an error naming the injected edge,
//!    instead of hanging or corrupting results.

use salu::prelude::*;
use salu::simgrid::FailKind;

const CHAOS_SPEC: &str = "drop:p=0.05;dup:p=0.02;delay:p=0.1,secs=2e-3";
const CHAOS_SEED: u64 = 7;

fn chaos_problem() -> (Prepared, Vec<f64>) {
    let nx = 20;
    let a = salu::sparsemat::matgen::grid2d_5pt(nx, nx, 0.1, 5);
    let x_true: Vec<f64> = (0..a.nrows).map(|i| ((i % 9) as f64) - 4.0).collect();
    let b = a.matvec(&x_true);
    (Prepared::new(a, Geometry::Grid2d { nx, ny: nx }, 8, 8), b)
}

fn chaos_cfg(recover: bool, backend: Backend) -> SolverConfig {
    SolverConfig {
        pr: 2,
        pc: 2,
        pz: 4,
        model: TimeModel::edison_like(),
        sanitize: true,
        backend,
        fault_plan: Some(FaultPlan::parse(CHAOS_SPEC, CHAOS_SEED).expect("spec parses")),
        retry: recover.then(RetryPolicy::default),
        ..Default::default()
    }
}

#[test]
fn recovered_chaos_run_is_bitwise_identical_to_fault_free() {
    let (prep, b) = chaos_problem();
    let clean = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 4,
            model: TimeModel::edison_like(),
            ..Default::default()
        },
        Some(b.clone()),
    );
    // Both execution backends must carry the same plan to the same bits.
    for backend in [Backend::Threaded, Backend::Event] {
        let faulted = try_factor_and_solve(&prep, &chaos_cfg(true, backend), Some(b.clone()))
            .unwrap_or_else(|e| panic!("{backend}: recovery must carry the run through: {e}"));
        // The plan really injected faults...
        let m = faulted.metrics();
        assert!(
            m.counter("fault.injected.drop") > 0,
            "{backend}: plan injected no drops"
        );
        assert!(m.counter("fault.recovered.retransmit") > 0, "{backend}");
        // ...the sanitizer saw a balanced protocol...
        let rep = faulted.sanitizer.as_ref().expect("sanitized run reports");
        assert!(rep.is_clean(), "{backend}: {}", rep.render());
        // ...retransmits and injected duplicates were charged to the fault
        // ledger, never to the algorithmic wire volume: the recovered run's
        // wire-volume report is byte-identical to the fault-free one...
        assert!(
            m.counter("fault.resent_words") > 0,
            "{backend}: no retransmit volume"
        );
        assert_eq!(
            faulted.commvol_profile().pretty(),
            clean.commvol_profile().pretty(),
            "{backend}: recovered run must report fault-free algorithmic volume"
        );
        // ...and the factors and solution are bit-for-bit the fault-free
        // ones.
        assert_eq!(
            faulted.factor_digest, clean.factor_digest,
            "{backend}: recovery changed factor values"
        );
        let (xf, xc) = (faulted.x.as_ref().unwrap(), clean.x.as_ref().unwrap());
        for (i, (a, b)) in xf.iter().zip(xc).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{backend}: x[{i}]: {a} vs {b}");
        }
        // Retransmission waits are simulated time: the faulted run is
        // slower.
        assert!(faulted.makespan() > clean.makespan(), "{backend}");
    }
}

#[test]
fn chaos_with_recovery_is_deterministic() {
    // Same plan, same seed, run twice per backend: identical digests,
    // solutions, and fault counters — the injected schedule is independent
    // of thread interleaving AND of the execution backend.
    let (prep, b) = chaos_problem();
    let run =
        |backend| try_factor_and_solve(&prep, &chaos_cfg(true, backend), Some(b.clone())).unwrap();
    let (o1, o2) = (run(Backend::Threaded), run(Backend::Threaded));
    let oe = run(Backend::Event);
    assert_eq!(o1.factor_digest, o2.factor_digest);
    assert_eq!(o1.factor_digest, oe.factor_digest, "event digest diverged");
    let (x1, x2, xe) = (
        o1.x.as_ref().unwrap(),
        o2.x.as_ref().unwrap(),
        oe.x.as_ref().unwrap(),
    );
    assert_eq!(x1.len(), x2.len());
    for ((a, b), c) in x1.iter().zip(x2).zip(xe) {
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c.to_bits());
    }
    assert_eq!(o1.metrics().counters, o2.metrics().counters);
    assert_eq!(
        o1.metrics().counters,
        oe.metrics().counters,
        "fault counters depend on the backend"
    );
    assert_eq!(o1.makespan(), o2.makespan());
    assert_eq!(
        o1.makespan(),
        oe.makespan(),
        "makespan depends on the backend"
    );
}

#[test]
fn unrecovered_chaos_run_fails_structurally() {
    // The same plan without recovery: drops are lost for good. The run
    // must abort with a structured SolverError whose chain reaches a
    // commcheck verdict (deadlock on the starved edge), not hang and not
    // return wrong numbers. The threaded backend gets there via the
    // detector thread's grace window; the event backend by proving
    // scheduler quiescence.
    let (prep, b) = chaos_problem();
    for backend in [Backend::Threaded, Backend::Event] {
        let err = try_factor_and_solve(&prep, &chaos_cfg(false, backend), Some(b.clone()))
            .err()
            .expect("lost messages without recovery must fail the run");
        let text = err.to_string();
        assert!(
            text.contains("deadlock detected") || text.contains("terminated"),
            "{backend}: error must carry the structural diagnosis: {text}"
        );
        // The failure is attributed to a specific rank and phase.
        assert!(err.rank < 16, "{backend}: rank {} out of range", err.rank);
        assert!(!err.phase.is_empty(), "{backend}");
    }
}

#[test]
fn recv_deadline_failure_names_phase_and_supernode() {
    // A 1x1x2 grid has exactly one kind of traffic: the z-line ancestor
    // reduction. Delaying the 1 -> 0 edge beyond the simulated receive
    // deadline must produce a SolverError in phase `reduce` naming the
    // supernode and forest level being reduced, on rank 0.
    let (prep, b) = chaos_problem();
    let cfg = SolverConfig {
        pr: 1,
        pc: 1,
        pz: 2,
        model: TimeModel::edison_like(),
        fault_plan: Some(
            FaultPlan::parse("delay:p=1,secs=30,src=1,dst=0", 1).expect("spec parses"),
        ),
        recv_deadline: Some(1.0),
        ..Default::default()
    };
    let err = try_factor_and_solve(&prep, &cfg, Some(b))
        .err()
        .expect("the delayed reduction must trip the deadline");
    assert_eq!(err.rank, 0, "{err}");
    assert_eq!(err.phase, "reduce", "{err}");
    match &err.kind {
        FailKind::Solver {
            supernode,
            level,
            detail,
            ..
        } => {
            assert!(supernode.is_some(), "{err}");
            assert!(level.is_some(), "{err}");
            assert!(
                detail.contains("z-line reduction recv from z=1"),
                "{detail}"
            );
            assert!(detail.contains("deadline"), "{detail}");
        }
        other => panic!("expected a Solver failure, got {other:?}"),
    }
    assert!(err.supernode().is_some() && err.level().is_some(), "{err}");
}
