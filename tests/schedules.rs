//! Differential schedule suite: the task-graph schedule must be bitwise
//! identical to the level schedule on every receiver-observable value —
//! factor digests, solutions, wire-volume ledgers, memory ledgers (modulo
//! the peak *timestamp*, which tracks the clock like the makespan does),
//! and the static plan-check verdict — across the generator × grid-shape ×
//! option matrix, on both execution backends. Simulated clocks are the
//! one permitted difference: send charges are serial on the sender's
//! clock, so a hoisted send both delivers its message earlier *and*
//! pushes the sender's later intra-level broadcasts later — whether the
//! makespan drops depends on where the wait slack sits (docs/backends.md,
//! "Schedules"). At Pz = 1 there is no z-reduction to hoist, so the
//! makespan must tie bitwise; the per-point `taskgraph <= level` gate
//! lives in the scaling campaign (campaigns/scaling.toml), whose points
//! are Schur-dominated shapes where hoisting measurably wins.
//!
//! The recovered-fault case moves clocks for a second reason: fault
//! decisions hash the sender's global message sequence number, so
//! reordering sends re-rolls which messages get dropped or delayed. Retry
//! recovery still delivers the exact fault-free payload sequence and lost
//! attempts stay out of the ledgers, so every non-clock observable must
//! still match bitwise — which is exactly what this suite checks there.

use commplan::{build_plan, check_plan, compare_with_measured};
use lu3d::solver::{try_factor_and_solve, try_factor_only, SolverConfig};
use lu3d::EtreeForest;
use salu::prelude::*;
use salu::simgrid::{Grid3d, MemReport, RankReport, Schedule};
use sparsemat::matgen;
use sparsemat::Csr;

struct Case {
    label: &'static str,
    a: Csr,
    geometry: Geometry,
    grid: (usize, usize, usize),
    batched: bool,
    lookahead: usize,
    fault_spec: Option<&'static str>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "grid2d:16 2x2x1 (planar: no sends to hoist)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (2, 2, 1),
            batched: false,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "grid2d:16 2x2x4 lookahead=0 (deep Z)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (2, 2, 4),
            batched: false,
            lookahead: 0,
            fault_spec: None,
        },
        Case {
            label: "grid2d:16 4x1x2 batched (tall layer)",
            a: matgen::grid2d_5pt(16, 16, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 16, ny: 16 },
            grid: (4, 1, 2),
            batched: true,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "grid2d:20 2x2x2 chaos + retry",
            a: matgen::grid2d_5pt(20, 20, 0.1, 1),
            geometry: Geometry::Grid2d { nx: 20, ny: 20 },
            grid: (2, 2, 2),
            batched: false,
            lookahead: 8,
            fault_spec: Some("drop:p=0.05;dup:p=0.02;delay:p=0.1,secs=2e-3"),
        },
        Case {
            label: "grid3d:6 2x2x2 batched",
            a: matgen::grid3d_7pt(6, 6, 6, 0.1, 1),
            geometry: Geometry::Grid3d {
                nx: 6,
                ny: 6,
                nz: 6,
            },
            grid: (2, 2, 2),
            batched: true,
            lookahead: 8,
            fault_spec: None,
        },
        Case {
            label: "kkt:4 2x2x2 lookahead=4",
            a: matgen::kkt_3d(4, 4, 4, 1e-2, 1),
            geometry: Geometry::General,
            grid: (2, 2, 2),
            batched: false,
            lookahead: 4,
            fault_spec: None,
        },
    ]
}

fn config(case: &Case, backend: Backend, schedule: Schedule) -> SolverConfig {
    let (pr, pc, pz) = case.grid;
    SolverConfig {
        pr,
        pc,
        pz,
        model: TimeModel::edison_like(),
        lookahead: case.lookahead,
        batched_schur: case.batched,
        backend,
        schedule,
        fault_plan: case
            .fault_spec
            .map(|s| FaultPlan::parse(s, 7).expect("fault spec parses")),
        retry: case.fault_spec.map(|_| RetryPolicy::default()),
        ..Default::default()
    }
}

/// Per-rank memory reports with the peak timestamp masked: the ledger
/// event *sequence* is schedule-invariant (so peak bytes and attribution
/// must match bitwise), but the simulated instant the peak occurs at
/// follows the clock, which is exactly what the schedule improves.
fn memprofs_sans_peak_t(reports: &[RankReport]) -> Vec<MemReport> {
    reports
        .iter()
        .map(|r| MemReport {
            peak_t: 0.0,
            ..r.memprof.clone()
        })
        .collect()
}

/// Factors, wire ledgers, and memory ledgers are schedule-independent,
/// bitwise, on both backends; fault-free makespans never regress and tie
/// exactly on planar (Pz = 1) grids.
#[test]
fn every_config_is_bitwise_identical_across_schedules() {
    for case in cases() {
        let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
        for backend in [Backend::Threaded, Backend::Event] {
            let level = try_factor_only(&prep, &config(&case, backend, Schedule::Level))
                .unwrap_or_else(|e| panic!("{} [{backend}]: level run failed: {e}", case.label));
            let tg = try_factor_only(&prep, &config(&case, backend, Schedule::TaskGraph))
                .unwrap_or_else(|e| {
                    panic!("{} [{backend}]: taskgraph run failed: {e}", case.label)
                });

            assert_eq!(
                level.factor_digest, tg.factor_digest,
                "{} [{backend}]: factor digests diverge across schedules",
                case.label
            );
            assert_eq!(
                level.commvol_profile().pretty(),
                tg.commvol_profile().pretty(),
                "{} [{backend}]: wire-volume reports diverge across schedules",
                case.label
            );
            assert_eq!(
                memprofs_sans_peak_t(&level.reports),
                memprofs_sans_peak_t(&tg.reports),
                "{} [{backend}]: memory ledgers diverge across schedules",
                case.label
            );
            if case.grid.2 == 1 {
                assert_eq!(
                    tg.makespan().to_bits(),
                    level.makespan().to_bits(),
                    "{} [{backend}]: planar grids have nothing to hoist — \
                     makespans must tie bitwise",
                    case.label
                );
            }
        }
    }
}

/// The task-graph schedule itself is backend-independent: threaded and
/// event runs agree bitwise on digest, makespan, and both ledgers —
/// extending the backend-equivalence guarantee (tests/backends.rs) to the
/// new schedule.
#[test]
fn taskgraph_is_bitwise_identical_across_backends() {
    for case in cases() {
        let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
        let threaded = try_factor_only(
            &prep,
            &config(&case, Backend::Threaded, Schedule::TaskGraph),
        )
        .unwrap_or_else(|e| panic!("{}: threaded run failed: {e}", case.label));
        let event = try_factor_only(&prep, &config(&case, Backend::Event, Schedule::TaskGraph))
            .unwrap_or_else(|e| panic!("{}: event run failed: {e}", case.label));
        assert_eq!(
            threaded.factor_digest, event.factor_digest,
            "{}",
            case.label
        );
        assert_eq!(
            threaded.makespan().to_bits(),
            event.makespan().to_bits(),
            "{}: taskgraph makespans diverge across backends",
            case.label
        );
        assert_eq!(
            threaded.commvol_profile().pretty(),
            event.commvol_profile().pretty(),
            "{}",
            case.label
        );
        assert_eq!(
            threaded.mem_profile().pretty(),
            event.mem_profile().pretty(),
            "{}: same schedule, same backend-blind memory ledger (incl. peak_t)",
            case.label
        );
    }
}

/// The static communication plan accepts the task-graph schedule's
/// measured ledgers: hoisting changes *when* each z-reduction message
/// leaves, never its existence, size, or channel, so the exact plan-check
/// gate stays green without any plan-side changes.
#[test]
fn plan_check_accepts_taskgraph_ledgers() {
    for case in cases() {
        let (pr, pc, pz) = case.grid;
        let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
        let forest = EtreeForest::build(&prep.tree, &prep.sym, pz);
        let plan = build_plan(&prep.sym, &forest, Grid3d::new(pr, pc, pz), case.lookahead);
        let audit = check_plan(&plan);
        assert!(audit.ok(), "{}: {:?}", case.label, audit.findings);

        let out = try_factor_only(&prep, &config(&case, Backend::Event, Schedule::TaskGraph))
            .unwrap_or_else(|e| panic!("{}: taskgraph run failed: {e}", case.label));
        let ledgers: Vec<_> = out.reports.iter().map(|r| r.commvol.clone()).collect();
        if let Err(mismatches) = compare_with_measured(&plan, &ledgers) {
            panic!(
                "{}: plan != taskgraph ledger:\n{}",
                case.label,
                mismatches.join("\n")
            );
        }
    }
}

/// End-to-end cross-check on one deep-Z config: the distributed solve and
/// iterative refinement see bitwise-identical factors, so the solution
/// vector matches bit-for-bit across schedules.
#[test]
fn solutions_match_bitwise_across_schedules() {
    let case = &cases()[1]; // grid2d:16 2x2x4
    let prep = Prepared::new(case.a.clone(), case.geometry, 16, 24);
    let x_true: Vec<f64> = (0..case.a.nrows).map(|i| (i as f64).sin()).collect();
    let b = case.a.matvec(&x_true);
    let mut solutions = Vec::new();
    for schedule in [Schedule::Level, Schedule::TaskGraph] {
        let mut cfg = config(case, Backend::Event, schedule);
        cfg.refine_steps = 1;
        let out = try_factor_and_solve(&prep, &cfg, Some(b.clone()))
            .unwrap_or_else(|e| panic!("{schedule} solve failed: {e}"));
        let x = out.x.clone().expect("solution requested");
        let resid = prep.a.residual_inf(&x, &b);
        assert!(resid < 1e-8, "{schedule}: residual {resid}");
        solutions.push(x.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }
    assert_eq!(
        solutions[0], solutions[1],
        "solutions diverge across schedules"
    );
}

/// Full-precision makespan probe at the committed campaign points
/// (campaigns/scaling.toml); not an assertion — run manually with
/// `cargo test --release --test schedules probe -- --ignored --nocapture`.
#[test]
#[ignore = "manual probe (release-mode scale)"]
fn probe_bench_points() {
    let a = matgen::kkt_3d(12, 12, 12, 1e-2, 1);
    let prep = Prepared::new(a, Geometry::General, 16, 24);
    for (pr, pc, pz) in [
        (8, 8, 1),
        (4, 4, 4),
        (16, 16, 1),
        (8, 8, 4),
        (32, 32, 1),
        (16, 16, 4),
        (64, 64, 1),
        (32, 32, 4),
    ] {
        let mut ms = Vec::new();
        for schedule in [Schedule::Level, Schedule::TaskGraph] {
            let cfg = SolverConfig {
                pr,
                pc,
                pz,
                model: TimeModel::edison_like(),
                backend: Backend::Event,
                schedule,
                ..Default::default()
            };
            let out = try_factor_only(&prep, &cfg).expect("probe run");
            ms.push(out.makespan());
        }
        println!(
            "kkt:12 {pr}x{pc}x{pz}: level={:.9e} taskgraph={:.9e} delta={:+.4}%",
            ms[0],
            ms[1],
            (ms[1] - ms[0]) / ms[0] * 100.0
        );
    }
}
