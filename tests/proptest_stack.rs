//! Property-based tests across the stack: random matrices, random grid
//! shapes, and structural invariants that must hold for *every* input.

use proptest::prelude::*;
use salu::ordering::{nested_dissection, Graph, NdOptions};
use salu::prelude::*;
use salu::symbolic::Symbolic;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case factors a matrix on simulated ranks
        .. ProptestConfig::default()
    })]

    /// Any diagonally dominant banded matrix solves to a small residual on
    /// any modest 3D grid shape.
    #[test]
    fn random_band_matrices_solve(
        n in 24usize..90,
        bw in 1usize..6,
        fill in 0.2f64..0.9,
        seed in 0u64..1000,
        pc in 1usize..3,
        lpz in 0usize..3,
    ) {
        let a = salu::sparsemat::matgen::random_band(n, bw, fill, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let b = a.matvec(&x_true);
        let prep = Prepared::new(a, Geometry::General, 8, 8);
        let cfg = SolverConfig {
            pr: 1,
            pc,
            pz: 1 << lpz,
            model: TimeModel::zero(),
            ..Default::default()
        };
        let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
        let x = out.x.expect("solution");
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let r = prep.a.residual_inf(&x, &b) / bmax;
        prop_assert!(r < 1e-7, "residual {r}");
    }

    /// Nested dissection always yields a valid permutation and a valid
    /// separator tree on random banded graphs.
    #[test]
    fn nd_is_always_valid(
        n in 10usize..200,
        bw in 1usize..8,
        fill in 0.1f64..1.0,
        seed in 0u64..1000,
        leaf in 4usize..40,
    ) {
        let a = salu::sparsemat::matgen::random_band(n, bw, fill, seed);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: leaf,
                geometry: Geometry::General,
                seed,
            },
        );
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        prop_assert_eq!(tree.n(), n);
        // The permutation must be a bijection (Perm enforces it) and the
        // leaf bound respected.
        for node in &tree.nodes {
            if node.is_leaf {
                prop_assert!(node.width() <= leaf);
            }
        }
    }

    /// The block-fill closure property (every Schur target exists) holds
    /// for arbitrary matrices — the numerical phase depends on it.
    #[test]
    fn fill_closure_always_holds(
        n in 16usize..120,
        bw in 1usize..6,
        fill in 0.2f64..1.0,
        seed in 0u64..1000,
        maxsup in 2usize..12,
    ) {
        let a = salu::sparsemat::matgen::random_band(n, bw, fill, seed);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::General,
                seed,
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, maxsup);
        for s in 0..sym.nsup() {
            let st = &sym.fill.struct_of[s];
            for (xi, &j) in st.iter().enumerate() {
                for &i in &st[xi + 1..] {
                    prop_assert!(
                        sym.fill.struct_of[j].binary_search(&i).is_ok(),
                        "missing target ({i},{j}) from {s}"
                    );
                }
            }
        }
    }

    /// Tree-forest partitions cover every node exactly once with nested
    /// replication ranges, for every Pz.
    #[test]
    fn forest_partition_invariants(
        n in 40usize..160,
        seed in 0u64..500,
        lpz in 0usize..4,
    ) {
        let a = salu::sparsemat::matgen::random_band(n, 3, 0.7, seed);
        let g = Graph::from_matrix(&a);
        let tree = nested_dissection(
            &g,
            NdOptions {
                leaf_size: 8,
                geometry: Geometry::General,
                seed,
            },
        );
        let pa = a.permute_sym(&tree.perm).symmetrize_pattern();
        let sym = Symbolic::analyze(&pa, &tree, 8);
        let forest = EtreeForest::build(&tree, &sym, 1 << lpz);
        prop_assert!(forest.validate(&tree).is_ok(), "{:?}", forest.validate(&tree));
        // Every supernode appears in exactly one part.
        let mut seen = vec![false; sym.nsup()];
        for lvl in 0..=forest.l {
            for q in 0..(1usize << lvl) {
                for s in forest.supernodes_of(lvl, q, &sym.part) {
                    prop_assert!(!seen[s]);
                    seen[s] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // every case spins up several simulated machines
        .. ProptestConfig::default()
    })]

    /// For any matrix and grid shape, the two solve strategies (fully
    /// distributed 3D vs gather-to-grid-0) agree to rounding, and 2D
    /// (Pz = 1) agrees with 3D up to reduction rounding.
    #[test]
    fn solve_strategies_and_grids_agree(
        n in 30usize..80,
        seed in 0u64..500,
        pc in 1usize..3,
        lpz in 1usize..3,
    ) {
        use salu::lu3d::solver::SolveStrategy;
        let a = salu::sparsemat::matgen::random_band(n, 4, 0.6, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
        let prep = Prepared::new(a, Geometry::General, 8, 8);
        let run = |pz: usize, strategy: SolveStrategy| -> Vec<f64> {
            factor_and_solve(
                &prep,
                &SolverConfig {
                    pr: 1,
                    pc,
                    pz,
                    solve_strategy: strategy,
                    model: TimeModel::zero(),
                    ..Default::default()
                },
                Some(b.clone()),
            )
            .x
            .unwrap()
        };
        let x3 = run(1 << lpz, SolveStrategy::Distributed3d);
        let xg = run(1 << lpz, SolveStrategy::GatherToGrid0);
        let x2 = run(1, SolveStrategy::Distributed3d);
        let scale = x2.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for ((u, v), w) in x3.iter().zip(&xg).zip(&x2) {
            prop_assert!((u - v).abs() / scale < 1e-9, "strategy divergence");
            prop_assert!((u - w).abs() / scale < 1e-7, "2D/3D divergence");
        }
        let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prop_assert!(prep.a.residual_inf(&x3, &b) / bmax < 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Matrix Market writer/reader round-trips arbitrary banded matrices.
    #[test]
    fn matrix_market_roundtrip(
        n in 1usize..60,
        bw in 0usize..5,
        fill in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let a = salu::sparsemat::matgen::random_band(n, bw, fill, seed);
        let mut buf = Vec::new();
        salu::sparsemat::io::write_matrix_market(&mut buf, &a).unwrap();
        let b = salu::sparsemat::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Symmetric permutation preserves every entry: `B[p(i),p(j)] == A[i,j]`.
    #[test]
    fn permutation_preserves_entries(
        n in 2usize..50,
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let a = salu::sparsemat::matgen::random_band(n, 3, 0.6, seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let p = Perm::from_old_order(order);
        let b = a.permute_sym(&p);
        for i in 0..n {
            for (j, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                prop_assert_eq!(b.get(p.new_of(i), p.new_of(*j)), *v);
            }
        }
    }

    /// The dense LU + substitution inverts matvec for any well-conditioned
    /// matrix (cross-checks densela against sparsemat-independent math).
    #[test]
    fn dense_lu_roundtrip(n in 1usize..40, seed in 0u64..1000) {
        use salu::densela::{getrf, lu_solve_inplace, Mat, PivotPolicy};
        let mut s = seed.wrapping_mul(2654435761).max(1);
        let mut a = Mat::from_fn(n, n, |_, _| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            ((s % 2000) as f64 / 1000.0) - 1.0
        });
        for i in 0..n {
            *a.at_mut(i, i) += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let mut b = a.matvec(&x_true);
        let mut lu = a.clone();
        getrf(&mut lu, PivotPolicy::Static { threshold: 1e-12 });
        lu_solve_inplace(&lu, &mut b);
        for i in 0..n {
            prop_assert!((b[i] - x_true[i]).abs() < 1e-7, "i={i}: {} vs {}", b[i], x_true[i]);
        }
    }
}
