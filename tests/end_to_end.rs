//! End-to-end integration tests: the full pipeline — generate, order,
//! analyze, distribute, factor, solve — across the whole test-matrix suite
//! and a range of 3D grid shapes.

use salu::prelude::*;

/// Factor + solve `a` on a `pr x pc x pz` simulated machine and return the
/// relative residual in the original ordering.
fn relative_residual(tm: &salu::sparsemat::TestMatrix, pr: usize, pc: usize, pz: usize) -> f64 {
    let a = &tm.matrix;
    let n = a.nrows;
    let x_true: Vec<f64> = (0..n).map(|i| ((i * 5 % 17) as f64) - 8.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a.clone(), tm.geometry, 16, 16);
    let cfg = SolverConfig {
        pr,
        pc,
        pz,
        model: TimeModel::zero(),
        ..Default::default()
    };
    let out = factor_and_solve(&prep, &cfg, Some(b.clone()));
    let x = out.x.expect("solution");
    let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    prep.a.residual_inf(&x, &b) / bmax
}

#[test]
fn whole_suite_solves_on_2x2x2() {
    for tm in test_suite(Scale::Tiny) {
        let r = relative_residual(&tm, 2, 2, 2);
        assert!(r < 1e-6, "{}: relative residual {r}", tm.name);
    }
}

#[test]
fn planar_matrices_solve_on_deep_z_grids() {
    for name in ["k2d5pt", "ecology", "g3circuit"] {
        let tm = test_matrix(name, Scale::Tiny);
        let r = relative_residual(&tm, 1, 2, 8);
        assert!(r < 1e-8, "{name}: relative residual {r}");
    }
}

#[test]
fn nonplanar_matrices_solve_on_mixed_grids() {
    for name in ["serena3d", "audikw", "coupcons", "dielfilter", "ldoor"] {
        let tm = test_matrix(name, Scale::Tiny);
        let r = relative_residual(&tm, 2, 1, 4);
        assert!(r < 1e-7, "{name}: relative residual {r}");
    }
}

#[test]
fn kkt_solves_despite_indefiniteness() {
    let tm = test_matrix("nlpkkt", Scale::Tiny);
    let r = relative_residual(&tm, 1, 2, 4);
    assert!(r < 1e-5, "nlpkkt: relative residual {r}");
}

#[test]
fn solutions_agree_between_2d_and_3d() {
    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let a = &tm.matrix;
    let b: Vec<f64> = (0..a.nrows).map(|i| (i as f64).sin()).collect();
    let prep = Prepared::new(a.clone(), tm.geometry, 16, 16);

    let x2 = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 1,
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b.clone()),
    )
    .x
    .unwrap();
    let x3 = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 1,
            pc: 2,
            pz: 4,
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b.clone()),
    )
    .x
    .unwrap();
    // Same factorization up to reduction rounding; solutions must agree far
    // tighter than the solve tolerance.
    let scale = x2.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (u, v) in x2.iter().zip(&x3) {
        assert!((u - v).abs() / scale < 1e-9, "2D/3D solution divergence");
    }
}

#[test]
fn rectangular_layers_and_odd_shapes() {
    let tm = test_matrix("s2d9pt", Scale::Tiny);
    for (pr, pc, pz) in [(1, 3, 2), (3, 1, 2), (1, 1, 4), (1, 4, 2)] {
        let r = relative_residual(&tm, pr, pc, pz);
        assert!(r < 1e-8, "{pr}x{pc}x{pz}: relative residual {r}");
    }
}

#[test]
fn distributed_3d_solve_matches_gather_solve() {
    // The fully distributed solve (z-axis accumulator reductions + solution
    // broadcasts) and the gather-to-grid-0 solve must produce the same
    // solution up to rounding — they apply the same factors.
    use salu::lu3d::solver::SolveStrategy;
    let tm = test_matrix("s2d9pt", Scale::Tiny);
    let a = &tm.matrix;
    let b: Vec<f64> = (0..a.nrows)
        .map(|i| ((i * 13) % 23) as f64 - 11.0)
        .collect();
    let prep = Prepared::new(a.clone(), tm.geometry, 16, 16);
    let run = |strategy: SolveStrategy| -> Vec<f64> {
        factor_and_solve(
            &prep,
            &SolverConfig {
                pr: 2,
                pc: 1,
                pz: 4,
                solve_strategy: strategy,
                model: TimeModel::zero(),
                ..Default::default()
            },
            Some(b.clone()),
        )
        .x
        .unwrap()
    };
    let xd = run(SolveStrategy::Distributed3d);
    let xg = run(SolveStrategy::GatherToGrid0);
    let scale = xd.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (u, v) in xd.iter().zip(&xg) {
        assert!((u - v).abs() / scale < 1e-11, "solve strategies diverge");
    }
    // And both actually solve the system.
    assert!(prep.a.residual_inf(&xd, &b) < 1e-8);
}

#[test]
fn amalgamated_trees_still_solve() {
    // Relaxed-supernode amalgamation merges small subtrees; the factor and
    // solve must be unaffected numerically while using fewer supernodes.
    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let a = &tm.matrix;
    let b: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.7).sin()).collect();
    let plain = Prepared::new(a.clone(), tm.geometry, 8, 16);
    let merged = Prepared::with_amalgamation(a.clone(), tm.geometry, 8, 16, Some(24));
    assert!(
        merged.sym.nsup() < plain.sym.nsup(),
        "amalgamation must reduce supernode count"
    );
    for prep in [&plain, &merged] {
        let out = factor_and_solve(
            prep,
            &SolverConfig {
                pr: 2,
                pc: 1,
                pz: 2,
                model: TimeModel::zero(),
                ..Default::default()
            },
            Some(b.clone()),
        );
        let x = out.x.unwrap();
        assert!(prep.a.residual_inf(&x, &b) < 1e-8);
    }
}

#[test]
fn dense_matrix_through_the_sparse_stack() {
    // Degenerate corner: a fully dense matrix. Nested dissection cannot
    // find separators (the graph is a clique), the "tree" collapses, and
    // the supernodal machinery must reduce to a distributed dense LU —
    // exercising the panel-chain path (one tree node split into many
    // panels) that big separators also take.
    let n = 48;
    let mut coo = salu::sparsemat::Coo::new(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64
            } else {
                (((i * 31 + j * 17) % 13) as f64) / 13.0 - 0.4
            };
            coo.push(i, j, v);
        }
    }
    let a = coo.to_csr();
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 10.0).collect();
    let b = a.matvec(&x_true);
    let prep = Prepared::new(a, Geometry::General, 8, 8);
    let out = factor_and_solve(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 1,
            model: TimeModel::zero(),
            ..Default::default()
        },
        Some(b.clone()),
    );
    let x = out.x.unwrap();
    let bmax = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    assert!(prep.a.residual_inf(&x, &b) / bmax < 1e-9);
}

#[test]
fn matrix_market_roundtrip_solves() {
    // Write a generated matrix to .mtx, read it back, solve: exercises the
    // I/O path a real user with SuiteSparse files would take.
    let tm = test_matrix("ecology", Scale::Tiny);
    let mut buf = Vec::new();
    salu::sparsemat::io::write_matrix_market(&mut buf, &tm.matrix).unwrap();
    let a = salu::sparsemat::io::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, tm.matrix);
    let tm2 = salu::sparsemat::TestMatrix {
        matrix: a,
        geometry: Geometry::General, // pretend we know nothing
        ..tm
    };
    let r = relative_residual(&tm2, 2, 2, 2);
    assert!(r < 1e-8, "roundtrip residual {r}");
}
