//! Communication and memory invariants: the measured counters of the
//! simulated machine must reproduce the paper's qualitative claims.

use salu::prelude::*;

fn run(tm: &salu::sparsemat::TestMatrix, p: usize, pz: usize) -> Output3d {
    let prep = Prepared::new(tm.matrix.clone(), tm.geometry, 16, 16);
    let pxy = p / pz;
    let (pr, pc) = if pxy >= 4 { (2, pxy / 2) } else { (1, pxy) };
    factor_only(
        &prep,
        &SolverConfig {
            pr,
            pc,
            pz,
            model: TimeModel::edison_like(),
            ..Default::default()
        },
    )
}

#[test]
fn pz1_has_no_reduction_traffic() {
    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let out = run(&tm, 8, 1);
    assert_eq!(out.w_red(), 0);
    assert!(out.w_fact() > 0);
}

#[test]
fn w_fact_decreases_monotonically_with_pz_planar() {
    // The core claim behind Fig. 10's planar panel.
    let tm = test_matrix("k2d5pt", Scale::Small);
    let w: Vec<u64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&pz| run(&tm, 16, pz).w_fact())
        .collect();
    for pair in w.windows(2) {
        assert!(pair[1] < pair[0], "W_fact must fall with Pz: {w:?}");
    }
}

#[test]
fn w_red_grows_with_pz() {
    let tm = test_matrix("nlpkkt", Scale::Tiny);
    let w: Vec<u64> = [2usize, 4, 8]
        .iter()
        .map(|&pz| run(&tm, 16, pz).w_red())
        .collect();
    assert!(w[2] > w[0], "W_red must grow with Pz: {w:?}");
}

#[test]
fn nonplanar_pays_more_memory_overhead_than_planar() {
    // Fig. 11's key contrast.
    let planar = test_matrix("k2d5pt", Scale::Small);
    let nonplanar = test_matrix("serena3d", Scale::Small);
    let overhead = |tm: &salu::sparsemat::TestMatrix| -> f64 {
        let base = run(tm, 16, 1).total_store_words as f64;
        let rep = run(tm, 16, 8).total_store_words as f64;
        rep / base - 1.0
    };
    let po = overhead(&planar);
    let no = overhead(&nonplanar);
    assert!(
        no > po,
        "non-planar overhead {no:.2} must exceed planar {po:.2}"
    );
    assert!(po >= 0.0, "replication cannot shrink memory");
}

#[test]
fn simulated_time_improves_with_pz_for_planar() {
    // Fig. 9's planar shape at the communication-bound scale.
    let tm = test_matrix("k2d5pt", Scale::Small);
    let t1 = run(&tm, 16, 1).makespan();
    let t4 = run(&tm, 16, 4).makespan();
    assert!(t4 < t1, "3D (Pz=4) must beat 2D on planar: {t4} vs {t1}");
}

#[test]
fn latency_messages_fall_with_pz() {
    // The paper's latency claim: the number of messages on the critical
    // path shrinks roughly like Pz for the subtree levels.
    let tm = test_matrix("k2d5pt", Scale::Small);
    let m1 = run(&tm, 16, 1).summary().max_sent_msgs;
    let m8 = run(&tm, 16, 8).summary().max_sent_msgs;
    assert!(
        (m8 as f64) < 0.7 * m1 as f64,
        "messages must fall: {m8} vs {m1}"
    );
}

#[test]
fn total_flops_are_grid_invariant() {
    // The same factorization arithmetic happens regardless of distribution.
    let tm = test_matrix("s2d9pt", Scale::Tiny);
    let f1 = run(&tm, 8, 1).summary().total_flops;
    let f2 = run(&tm, 8, 2).summary().total_flops;
    let f3 = run(&tm, 16, 4).summary().total_flops;
    assert_eq!(f1, f2);
    assert_eq!(f1, f3);
}

#[test]
fn wire_ledger_conserves_words_per_edge() {
    // The wire ledger is an independent charge path from the phase
    // counters; the two must agree in total, per phase, and edge by edge
    // (every word rank a charged toward b was booked by b from a).
    use std::collections::BTreeMap;
    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let out = run(&tm, 8, 2);
    let ledger: u64 = out.reports.iter().map(|r| r.commvol.sent_words()).sum();
    let counters: u64 = out.reports.iter().map(|r| r.total_sent_words()).sum();
    assert_eq!(ledger, counters, "ledger total != phase-counter total");
    assert_eq!(
        out.reports
            .iter()
            .map(|r| r.commvol.phase_words("reduce"))
            .max()
            .unwrap(),
        out.w_red(),
        "reduce-phase ledger words != W_red"
    );
    let mut sent: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    let mut recv: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for (me, r) in out.reports.iter().enumerate() {
        for e in &r.commvol.sent_to {
            let s = sent.entry((me, e.peer)).or_default();
            s.0 += e.msgs;
            s.1 += e.words;
        }
        for e in &r.commvol.recv_from {
            let s = recv.entry((e.peer, me)).or_default();
            s.0 += e.msgs;
            s.1 += e.words;
        }
    }
    assert_eq!(sent, recv, "per-edge (msgs, words) sent/received disagree");
}

#[test]
fn measured_per_rank_volume_falls_with_pz_planar() {
    // The acceptance claim behind the replication audit: on a planar
    // matrix, growing Pz at fixed P must cut the measured per-rank wire
    // volume, not just the modeled one.
    let tm = test_matrix("k2d5pt", Scale::Small);
    let w1 = run(&tm, 16, 1).max_rank_sent_words();
    let w4 = run(&tm, 16, 4).max_rank_sent_words();
    assert!(
        w4 < w1,
        "replication must cut per-rank wire volume: {w4} vs {w1}"
    );
}

#[test]
fn wire_classes_and_axes_cover_the_algorithm() {
    use salu::simgrid::{CommClass, GridAxis};
    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let out = run(&tm, 8, 2);
    // A 3D factorization ships L panels, U panels, and z reductions.
    for class in [CommClass::LPanel, CommClass::UPanel, CommClass::ZReduction] {
        assert!(out.class_words(class) > 0, "no {class:?} traffic charged");
    }
    assert!(out.axis_words(GridAxis::Z) > 0, "no z-axis words at Pz=2");
    // Pure 2D runs have neither z-axis edges nor reduction payloads.
    let flat = run(&tm, 8, 1);
    assert_eq!(flat.class_words(CommClass::ZReduction), 0);
    assert_eq!(flat.axis_words(GridAxis::Z), 0);
}

#[test]
fn deterministic_counters_across_runs() {
    let tm = test_matrix("g3circuit", Scale::Tiny);
    let a = run(&tm, 8, 2);
    let b = run(&tm, 8, 2);
    assert_eq!(a.w_fact(), b.w_fact());
    assert_eq!(a.w_red(), b.w_red());
    assert_eq!(a.total_store_words, b.total_store_words);
    assert_eq!(a.summary().max_sent_msgs, b.summary().max_sent_msgs);
}

#[test]
fn traced_3d_run_has_consistent_timelines() {
    // Run Algorithm 1 with event tracing and validate every rank's trace:
    // ordered, non-overlapping, and summing to the reported t_comp/t_comm.
    use salu::lu3d::{factor_3d, EtreeForest};
    use salu::simgrid::topology::build_grid_comms;
    use salu::simgrid::{Grid3d, Machine};
    use salu::slu2d::store::BlockStore;
    use std::sync::Arc;

    let tm = test_matrix("k2d5pt", Scale::Tiny);
    let prep = Prepared::new(tm.matrix.clone(), tm.geometry, 16, 16);
    let grid3 = Grid3d::new(1, 2, 2);
    let machine = Machine::new(grid3.size(), TimeModel::edison_like()).with_tracing();
    let forest = Arc::new(EtreeForest::build(&prep.tree, &prep.sym, 2));
    let pa = Arc::clone(&prep.pa);
    let sym = Arc::clone(&prep.sym);
    let out = machine.run(move |rank| {
        let comms = build_grid_comms(rank, &grid3);
        let (my_r, my_c, my_z) = comms.coords;
        let keep = |sn: usize| forest.keeps(sym.part.node_of_sn[sn], my_z);
        let value_pred = |bi: usize, bj: usize| {
            let (ni, nj) = (sym.part.node_of_sn[bi], sym.part.node_of_sn[bj]);
            let deeper = if forest.part_level[ni] >= forest.part_level[nj] {
                ni
            } else {
                nj
            };
            forest.factoring_grid(deeper) == my_z
        };
        let mut store = BlockStore::build_with_value_pred(
            &pa,
            &sym,
            &grid3.grid2d,
            my_r,
            my_c,
            &keep,
            &value_pred,
        );
        factor_3d(
            rank,
            &grid3,
            &comms,
            &mut store,
            &sym,
            &forest,
            salu::slu2d::factor2d::FactorOpts::default(),
            salu::simgrid::Schedule::Level,
        )
        .expect("fault-free factorization succeeds");
    });
    for rep in &out.reports {
        salu::simgrid::trace::validate_trace(rep).unwrap();
        assert!(rep.trace.as_ref().unwrap().activities.len() > 1);
    }
    // 4 rank rows + axis + legend.
    let gantt = salu::simgrid::render_gantt(&out.reports, 60);
    assert!(gantt.contains('#') && gantt.lines().count() == 6, "{gantt}");
}

#[test]
fn memory_accounting_matches_symbolic_prediction_in_2d() {
    // In pure 2D, the sum of all ranks' stores equals the symbolic factor
    // size exactly (no replication).
    let tm = test_matrix("ecology", Scale::Tiny);
    let prep = Prepared::new(tm.matrix.clone(), tm.geometry, 16, 16);
    let out = factor_only(
        &prep,
        &SolverConfig {
            pr: 2,
            pc: 2,
            pz: 1,
            model: TimeModel::zero(),
            ..Default::default()
        },
    );
    assert_eq!(out.total_store_words, prep.sym.stats().factor_words);
}
