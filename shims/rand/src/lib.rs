#![forbid(unsafe_code)]

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace uses rand only for seeded, reproducible pseudo-randomness
//! in matrix generators, ordering heuristics, and tests: `StdRng` via
//! `seed_from_u64`, `gen::<f64>()`, `gen_range(Range)`, and slice
//! `shuffle`. This shim implements that subset over a splitmix64-seeded
//! xorshift128+ generator. Streams differ from upstream rand, but every
//! consumer in the repo derives expectations structurally from the same
//! seed, so determinism — not the exact stream — is the contract.

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xorshift128+ generator standing in for rand's StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let s1 = splitmix64(&mut sm);
            // xorshift128+ requires a nonzero state.
            StdRng { s0: s0 | 1, s1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait FromRandom {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for usize {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range via [`Rng::gen_range`].
pub trait RandRange: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased-enough uniform integer in `[0, bound)`; bound > 0.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    // Multiply-shift reduction; the modulo bias is irrelevant at the
    // bounds this workspace uses (all far below 2^32).
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

impl RandRange for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + uniform_below(rng, (range.end - range.start) as u64) as usize
    }
}

impl RandRange for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + uniform_below(rng, range.end - range.start)
    }
}

impl RandRange for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl RandRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + f64::from_random(rng) * (range.end - range.start)
    }
}

/// The user-facing RNG trait (rand 0.8 names).
pub trait Rng: RngCore {
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    fn gen_range<T: RandRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (rand 0.8's `SliceRandom::shuffle`).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes");
    }
}
