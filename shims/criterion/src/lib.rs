#![forbid(unsafe_code)]

//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The workspace's benches use benchmark groups with `sample_size`,
//! `throughput`, `bench_with_input`/`bench_function`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. This shim keeps those
//! signatures and measures with a plain wall-clock loop: each benchmark
//! warms up once, then runs `sample_size` timed iterations and prints the
//! mean time (plus element throughput when declared). No statistics, HTML
//! reports, or CLI; `cargo bench` just prints one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl From<&BenchmarkId> for BenchmarkId {
    fn from(id: &BenchmarkId) -> Self {
        id.clone()
    }
}

/// Declared work per iteration, used to report a rate alongside the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.label, b.mean());
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.label, b.mean());
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, label: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3?} per iter{}",
            self.name, label, mean, rate
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }
}

/// Collect benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        g.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| x * 2);
        });
        g.bench_function(BenchmarkId::new("named", 42), |b| b.iter(|| ()));
        g.finish();
    }
}
