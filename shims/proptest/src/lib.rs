#![forbid(unsafe_code)]

//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a narrow slice of proptest:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in LO..HI, ...) {...} }`
//! - half-open range strategies over `usize`/`u32`/`u64`/`i64`/`f64`
//! - `prop_assert!` / `prop_assert_eq!`
//! - `ProptestConfig { cases, ..ProptestConfig::default() }`
//!
//! This shim runs each test body `cases` times with inputs drawn from a
//! deterministic splitmix64 stream keyed by the test name and case index,
//! so failures are reproducible run-to-run. No shrinking: the failing
//! case's arguments are printed instead.

use std::fmt;
use std::ops::Range;

/// Runner configuration; only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property (carried out of the test body by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case sampler.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Key the stream on the test name and case index so every test gets an
    /// independent, stable sequence.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value source for one macro argument. Implemented for the half-open
/// ranges the repo's tests use.
pub trait Strategy {
    type Value: fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start
            .wrapping_add(rng.below(self.end.wrapping_sub(self.start) as u64) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below((self.end - self.start) as u64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// The proptest! macro: expands each embedded `#[test] fn` into a plain
/// test that loops over sampled cases. On failure the case index and the
/// sampled arguments are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = run() {
                        panic!(
                            "proptest case {case} failed: {e}\n  args: {}",
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),*].join(", ")
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Assert a boolean property inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body (operands are only borrowed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        /// Sampled values stay inside their strategy ranges.
        #[test]
        fn ranges_are_respected(
            n in 3usize..17,
            x in -2.0f64..3.5,
            s in 10u64..1000,
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..3.5).contains(&x), "x = {x}");
            prop_assert!((10..1000).contains(&s));
            prop_assert_eq!(n + 1, n + 1);
            prop_assert_ne!(n, n + 1);
        }
    }

    proptest! {
        /// The no-config arm uses the default case count.
        #[test]
        fn default_config_arm_works(v in 0usize..5) {
            prop_assert!(v < 5);
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
