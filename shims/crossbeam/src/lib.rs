#![forbid(unsafe_code)]

//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this shim exposing exactly the `crossbeam::channel` subset the simulated
//! machine uses — `unbounded`, cloneable `Sender`, and a blocking
//! `Receiver` with `recv_timeout` — backed by `std::sync::mpsc` (whose
//! `Sender` is itself the upstream crossbeam port since Rust 1.67, so the
//! semantics match the real crate).

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// Unbounded MPSC sender; cloneable and shareable across threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// A channel of unbounded capacity: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            tx.send(3).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![3, 7]);
        }

        #[test]
        fn timeout_fires_when_empty() {
            let (_tx, rx) = unbounded::<u32>();
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }
    }
}
